package serve

import (
	"fmt"
	"io"
	"time"

	"acobe/internal/cert"
	"acobe/internal/enterprise"
	"acobe/internal/features"
	"acobe/internal/logstore"
)

// Event is the daemon's wire format: exactly one of Cert or Record is set,
// matching the repository's two log families (CERT-style user activity
// events and enterprise audit-log records). The JSON encoding is lossless,
// so a batch can round-trip through the HTTP ingest endpoint and reproduce
// the offline pipeline bit for bit.
type Event struct {
	Cert   *cert.Event      `json:"cert,omitempty"`
	Record *logstore.Record `json:"record,omitempty"`
}

// Time returns the event's timestamp, or the zero time when neither
// payload is set.
func (e Event) Time() time.Time {
	switch {
	case e.Cert != nil:
		return e.Cert.Time
	case e.Record != nil:
		return e.Record.Time
	default:
		return time.Time{}
	}
}

// Day returns the calendar day the event belongs to.
func (e Event) Day() cert.Day { return cert.DayOf(e.Time()) }

// Valid reports whether exactly one payload is set.
func (e Event) Valid() bool { return (e.Cert != nil) != (e.Record != nil) }

// An Ingestor turns one closed day's events into measurement-table rows.
// Implementations own a growing features.Table: the serving loop calls
// EnsureDay on it and then ConsumeDay once per day, in strictly
// chronological order (extractors carry first-seen state across days).
type Ingestor interface {
	// Table returns the live measurement table the ingestor fills.
	Table() *features.Table
	// ConsumeDay processes every event of one day. Events outside the
	// day or with the wrong payload type are rejected.
	ConsumeDay(d cert.Day, events []Event) error
}

// EventChecker is an optional Ingestor refinement: CheckEvent vets a
// single event's payload type up front, so Submit can reject a batch the
// ingestor could never consume before it is queued — and, with
// persistence, before it is WAL-logged. An unconsumable batch in a
// durable log would otherwise fail every replay at day-close, making the
// data directory unrecoverable. Ingestors without it accept any valid
// Event at submit time and rely on ConsumeDay's own checks.
type EventChecker interface {
	// CheckEvent returns an error when e's payload type cannot be
	// consumed by this ingestor.
	CheckEvent(e Event) error
}

// StatefulIngestor is an Ingestor whose cross-day state (table plus
// first-seen trackers) can be serialized. The persistence layer requires
// it: snapshots capture the ingestor so recovery resumes extraction
// mid-stream with identical results. Both built-in ingestors implement it.
type StatefulIngestor interface {
	Ingestor
	// SaveState writes the ingestor's complete state deterministically.
	SaveState(w io.Writer) error
	// LoadState restores state written by SaveState into a freshly
	// constructed ingestor of the same shape.
	LoadState(r io.Reader) error
}

// CERTIngestor adapts the CERT feature extractor (device/file/HTTP
// fine-grained features) to the serving loop. CERT extraction is
// within-day order-independent — a (feature, object) pair first seen on
// day d counts as new for all of day d — so arrival order inside a batch
// does not matter.
type CERTIngestor struct {
	x *features.Extractor
}

// NewCERTIngestor builds an ingestor over users whose table starts at
// start and grows forward.
func NewCERTIngestor(users []string, start cert.Day) (*CERTIngestor, error) {
	x, err := features.NewExtractor(users, start, start)
	if err != nil {
		return nil, fmt.Errorf("serve: cert ingestor: %w", err)
	}
	return &CERTIngestor{x: x}, nil
}

// Table implements Ingestor.
func (c *CERTIngestor) Table() *features.Table { return c.x.Table() }

// SaveState implements StatefulIngestor.
func (c *CERTIngestor) SaveState(w io.Writer) error { return c.x.SaveState(w) }

// LoadState implements StatefulIngestor.
func (c *CERTIngestor) LoadState(r io.Reader) error { return c.x.LoadState(r) }

// CheckEvent implements EventChecker: only CERT payloads are consumable.
func (c *CERTIngestor) CheckEvent(e Event) error {
	if e.Cert == nil {
		return fmt.Errorf("serve: cert ingestor accepts only CERT events")
	}
	return nil
}

// ConsumeDay implements Ingestor.
func (c *CERTIngestor) ConsumeDay(d cert.Day, events []Event) error {
	evs := make([]cert.Event, 0, len(events))
	for _, e := range events {
		if e.Cert == nil {
			return fmt.Errorf("serve: cert ingestor got non-CERT event on day %v", d)
		}
		evs = append(evs, *e.Cert)
	}
	return c.x.Consume(d, evs)
}

// EnterpriseIngestor adapts the enterprise audit-log extractor. Enterprise
// extraction attributes first-seen features to the frame of the first
// occurrence, so each day's records are sorted into canonical time order
// before extraction — ingest batches may arrive interleaved.
type EnterpriseIngestor struct {
	x *enterprise.Extractor
}

// NewEnterpriseIngestor builds an ingestor over users whose table starts
// at start and grows forward.
func NewEnterpriseIngestor(users []string, start cert.Day) (*EnterpriseIngestor, error) {
	x, err := enterprise.NewExtractor(users, start, start)
	if err != nil {
		return nil, fmt.Errorf("serve: enterprise ingestor: %w", err)
	}
	return &EnterpriseIngestor{x: x}, nil
}

// Table implements Ingestor.
func (e *EnterpriseIngestor) Table() *features.Table { return e.x.Table() }

// SaveState implements StatefulIngestor.
func (e *EnterpriseIngestor) SaveState(w io.Writer) error { return e.x.SaveState(w) }

// LoadState implements StatefulIngestor.
func (e *EnterpriseIngestor) LoadState(r io.Reader) error { return e.x.LoadState(r) }

// CheckEvent implements EventChecker: only enterprise records are
// consumable.
func (e *EnterpriseIngestor) CheckEvent(ev Event) error {
	if ev.Record == nil {
		return fmt.Errorf("serve: enterprise ingestor accepts only record events")
	}
	return nil
}

// ConsumeDay implements Ingestor.
func (e *EnterpriseIngestor) ConsumeDay(d cert.Day, events []Event) error {
	recs := make([]logstore.Record, 0, len(events))
	for _, ev := range events {
		if ev.Record == nil {
			return fmt.Errorf("serve: enterprise ingestor got non-record event on day %v", d)
		}
		recs = append(recs, *ev.Record)
	}
	logstore.SortRecords(recs)
	return e.x.Consume(d, recs)
}
