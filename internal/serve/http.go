package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"acobe/internal/cert"
	"acobe/internal/obs"
	"acobe/pkg/acobe"
)

// handlerConfig is what the HandlerOptions assemble.
type handlerConfig struct {
	metrics bool
	pprof   bool
	healthz bool
}

// HandlerOption composes the daemon's HTTP surface. The zero set mounts
// the /v1 API, /healthz, and GET /metrics; options add or remove the
// operational endpoints so one mux (and one listener) serves everything.
type HandlerOption func(*handlerConfig)

// WithMetrics mounts (or, with false, removes) GET /metrics, the
// Prometheus text exposition. Mounted by default; on a server without an
// Observer the endpoint reports the observer as disabled rather than 404,
// so scrapers can tell "no instrumentation" from "wrong address".
func WithMetrics(enabled bool) HandlerOption {
	return func(c *handlerConfig) { c.metrics = enabled }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the same mux,
// replacing the separate pprof listener deployments used to wire by hand.
// Off by default: profiling endpoints on a public listener are a
// deliberate choice.
func WithPprof(enabled bool) HandlerOption {
	return func(c *handlerConfig) { c.pprof = enabled }
}

// WithHealthz controls GET /healthz (mounted by default).
func WithHealthz(enabled bool) HandlerOption {
	return func(c *handlerConfig) { c.healthz = enabled }
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/ingest          body: one JSON Event per line (JSONL)
//	POST /v1/close?day=D     close every day through D
//	GET  /v1/rank?from=&to=&top=N
//	POST /v1/retrain?from=&to=&wait=1
//	GET  /v1/status          versioned status report (schema_version 1)
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz
//	/debug/pprof/*           with WithPprof(true)
//
// Days parse as YYYY-MM-DD or as a plain integer day number.
func (s *Server) Handler(opts ...HandlerOption) http.Handler {
	cfg := handlerConfig{metrics: true, healthz: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/close", s.handleClose)
	mux.HandleFunc("GET /v1/rank", s.handleRank)
	mux.HandleFunc("POST /v1/retrain", s.handleRetrain)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	if cfg.metrics {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if cfg.healthz {
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		})
	}
	if cfg.pprof {
		mountPprof(mux)
	}
	return mux
}

// mountPprof registers the net/http/pprof handlers on mux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// PprofHandler returns a mux serving only /debug/pprof/* — the handler a
// deployment puts on a separate, non-public listener when it wants
// profiling off the API surface (the in-mux alternative is
// Handler(WithPprof(true))).
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mountPprof(mux)
	return mux
}

// handleMetrics renders one Prometheus scrape: the observer snapshot plus
// the live gauges only the server knows.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Status()
	g := obs.Gauges{
		Users:          st.Users,
		Shards:         st.Shards,
		ClosedThrough:  int64(st.ClosedThrough),
		Fitted:         st.Fitted,
		Retraining:     st.Retraining,
		PersistEnabled: st.Persistence != nil,
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, st.Metrics, g)
}

// parseDay accepts 2010-06-01 or a raw integer day index.
func parseDay(s string) (cert.Day, error) {
	if s == "" {
		return 0, errors.New("missing day")
	}
	if n, err := strconv.Atoi(s); err == nil {
		return cert.Day(n), nil
	}
	return cert.ParseDay(s)
}

func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNoModel):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrRetrainInProgress):
		code = http.StatusConflict
	case errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, acobe.ErrCanceled):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// handleIngest reads one JSON event per body line and submits them in one
// batch. A full queue blocks the request (backpressure); a canceled
// request or shutdown yields 503.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var events []Event
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			http.Error(w, fmt.Sprintf("line %d: %v", line, err), http.StatusBadRequest)
			return
		}
		if !e.Valid() {
			http.Error(w, fmt.Sprintf("line %d: event must carry exactly one of cert/record", line), http.StatusBadRequest)
			return
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.Submit(r.Context(), events); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]int{"accepted": len(events)})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	d, err := parseDay(r.URL.Query().Get("day"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.CloseDay(r.Context(), d); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{"closed_through": s.ClosedThrough()})
}

// rankResponse is the ranked-list wire format.
type rankResponse struct {
	From    cert.Day       `json:"from"`
	To      cert.Day       `json:"to"`
	Aspects []string       `json:"aspects"`
	List    []acobe.Ranked `json:"list"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := parseDay(q.Get("from"))
	if err != nil {
		http.Error(w, "from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseDay(q.Get("to"))
	if err != nil {
		http.Error(w, "to: "+err.Error(), http.StatusBadRequest)
		return
	}
	list, err := s.Rank(r.Context(), from, to)
	if err != nil {
		httpError(w, err)
		return
	}
	if topStr := q.Get("top"); topStr != "" {
		top, err := strconv.Atoi(topStr)
		if err != nil || top < 0 {
			http.Error(w, "top: must be a non-negative integer", http.StatusBadRequest)
			return
		}
		if top < len(list) {
			list = list[:top]
		}
	}
	det := s.Detector()
	writeJSON(w, rankResponse{From: from, To: to, Aspects: det.AspectNames(), List: list})
}

func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := parseDay(q.Get("from"))
	if err != nil {
		http.Error(w, "from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseDay(q.Get("to"))
	if err != nil {
		http.Error(w, "to: "+err.Error(), http.StatusBadRequest)
		return
	}
	wait := q.Get("wait") == "1" || q.Get("wait") == "true"
	if err := s.Retrain(r.Context(), from, to, wait); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{"training": !wait, "fitted": s.Detector() != nil})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Status())
}
