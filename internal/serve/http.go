package serve

import (
	"bufio"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"acobe/internal/cert"
	"acobe/internal/obs"
	"acobe/pkg/acobe"
)

// handlerConfig is what the HandlerOptions assemble.
type handlerConfig struct {
	metrics bool
	pprof   bool
	healthz bool
	audit   bool
}

// HandlerOption composes the daemon's HTTP surface. The zero set mounts
// the /v1 API, /healthz, and GET /metrics; options add or remove the
// operational endpoints so one mux (and one listener) serves everything.
type HandlerOption func(*handlerConfig)

// WithMetrics mounts (or, with false, removes) GET /metrics, the
// Prometheus text exposition. Mounted by default; on a server without an
// Observer the endpoint reports the observer as disabled rather than 404,
// so scrapers can tell "no instrumentation" from "wrong address".
func WithMetrics(enabled bool) HandlerOption {
	return func(c *handlerConfig) { c.metrics = enabled }
}

// WithPprof mounts net/http/pprof under /debug/pprof/ on the same mux,
// replacing the separate pprof listener deployments used to wire by hand.
// Off by default: profiling endpoints on a public listener are a
// deliberate choice.
func WithPprof(enabled bool) HandlerOption {
	return func(c *handlerConfig) { c.pprof = enabled }
}

// WithHealthz controls GET /healthz (mounted by default).
func WithHealthz(enabled bool) HandlerOption {
	return func(c *handlerConfig) { c.healthz = enabled }
}

// WithAudit mounts the tamper-evidence endpoints — GET /v1/proof (batch
// inclusion proofs) and POST /v1/receipt (signed rank receipts). Off by
// default; mounting them on a server opened without PersistConfig.Audit
// yields 501 Not Implemented per request.
func WithAudit(enabled bool) HandlerOption {
	return func(c *handlerConfig) { c.audit = enabled }
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/ingest          body: one JSON Event per line (JSONL)
//	POST /v1/close?day=D     close every day through D
//	GET  /v1/rank?from=&to=&top=N
//	POST /v1/retrain?from=&to=&wait=1
//	GET  /v1/status          versioned status report (schema_version 1)
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz
//	/debug/pprof/*           with WithPprof(true)
//
// Days parse as YYYY-MM-DD or as a plain integer day number.
func (s *Server) Handler(opts ...HandlerOption) http.Handler {
	cfg := handlerConfig{metrics: true, healthz: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/close", s.handleClose)
	mux.HandleFunc("GET /v1/rank", s.handleRank)
	mux.HandleFunc("POST /v1/retrain", s.handleRetrain)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	if cfg.audit {
		mux.HandleFunc("GET /v1/proof", s.handleProof)
		mux.HandleFunc("POST /v1/receipt", s.handleReceipt)
	}
	if cfg.metrics {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	if cfg.healthz {
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		})
	}
	if cfg.pprof {
		mountPprof(mux)
	}
	return mux
}

// mountPprof registers the net/http/pprof handlers on mux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// PprofHandler returns a mux serving only /debug/pprof/* — the handler a
// deployment puts on a separate, non-public listener when it wants
// profiling off the API surface (the in-mux alternative is
// Handler(WithPprof(true))).
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mountPprof(mux)
	return mux
}

// handleMetrics renders one Prometheus scrape: the observer snapshot plus
// the live gauges only the server knows.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Status()
	g := obs.Gauges{
		Users:          st.Users,
		Shards:         st.Shards,
		ClosedThrough:  int64(st.ClosedThrough),
		Fitted:         st.Fitted,
		Retraining:     st.Retraining,
		PersistEnabled: st.Persistence != nil,
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, st.Metrics, g)
}

// parseDay accepts 2010-06-01 or a raw integer day index.
func parseDay(s string) (cert.Day, error) {
	if s == "" {
		return 0, errors.New("missing day")
	}
	if n, err := strconv.Atoi(s); err == nil {
		return cert.Day(n), nil
	}
	return cert.ParseDay(s)
}

func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNoModel):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrRetrainInProgress):
		code = http.StatusConflict
	case errors.Is(err, ErrAuditDisabled):
		code = http.StatusNotImplemented
	case errors.Is(err, ErrUnknownBatch), errors.Is(err, ErrUnknownEvent):
		code = http.StatusNotFound
	case errors.Is(err, ErrShuttingDown):
		code = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, acobe.ErrCanceled):
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// handleIngest reads one JSON event per body line and submits them in one
// batch. A full queue blocks the request (backpressure); a canceled
// request or shutdown yields 503.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var events []Event
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			http.Error(w, fmt.Sprintf("line %d: %v", line, err), http.StatusBadRequest)
			return
		}
		if !e.Valid() {
			http.Error(w, fmt.Sprintf("line %d: event must carry exactly one of cert/record", line), http.StatusBadRequest)
			return
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.auditOn() {
		id, err := s.SubmitProvable(r.Context(), events)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]any{"accepted": len(events), "batch_id": id})
		return
	}
	if err := s.Submit(r.Context(), events); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]int{"accepted": len(events)})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	d, err := parseDay(r.URL.Query().Get("day"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.CloseDay(r.Context(), d); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{"closed_through": s.ClosedThrough()})
}

// rankResponse is the ranked-list wire format.
type rankResponse struct {
	From    cert.Day       `json:"from"`
	To      cert.Day       `json:"to"`
	Aspects []string       `json:"aspects"`
	List    []acobe.Ranked `json:"list"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := parseDay(q.Get("from"))
	if err != nil {
		http.Error(w, "from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseDay(q.Get("to"))
	if err != nil {
		http.Error(w, "to: "+err.Error(), http.StatusBadRequest)
		return
	}
	list, err := s.Rank(r.Context(), from, to)
	if err != nil {
		httpError(w, err)
		return
	}
	if topStr := q.Get("top"); topStr != "" {
		top, err := strconv.Atoi(topStr)
		if err != nil || top < 0 {
			http.Error(w, "top: must be a non-negative integer", http.StatusBadRequest)
			return
		}
		if top < len(list) {
			list = list[:top]
		}
	}
	det := s.Detector()
	writeJSON(w, rankResponse{From: from, To: to, Aspects: det.AspectNames(), List: list})
}

func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := parseDay(q.Get("from"))
	if err != nil {
		http.Error(w, "from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseDay(q.Get("to"))
	if err != nil {
		http.Error(w, "to: "+err.Error(), http.StatusBadRequest)
		return
	}
	wait := q.Get("wait") == "1" || q.Get("wait") == "true"
	if err := s.Retrain(r.Context(), from, to, wait); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, map[string]any{"training": !wait, "fitted": s.Detector() != nil})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Status())
}

// proofStepJSON is one inclusion-proof path element on the wire.
type proofStepJSON struct {
	// Side is "left" when the sibling hash sits left of the running hash.
	Side string `json:"side"`
	Hash string `json:"hash"`
}

// proofResponse is the GET /v1/proof wire format. Root, Leaf, and Path
// hashes are lowercase hex; Encoded is the proof's binary codec form
// (hex), which audit.DecodeProof accepts for offline verification.
type proofResponse struct {
	BatchID     uint64          `json:"batch_id"`
	Event       int             `json:"event"`
	Events      int             `json:"events"`
	Shard       int             `json:"shard"`
	Segment     uint64          `json:"segment"`
	Offset      int64           `json:"offset"`
	Root        string          `json:"root"`
	Leaf        string          `json:"leaf"`
	Path        []proofStepJSON `json:"path"`
	Encoded     string          `json:"encoded"`
	Fingerprint string          `json:"fingerprint"`
}

// handleProof serves an inclusion proof for one ingested event:
// /v1/proof?batch=<id>&event=<i> (event defaults to 0).
func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	batch, err := strconv.ParseUint(q.Get("batch"), 10, 64)
	if err != nil {
		http.Error(w, "batch: must be a batch ID", http.StatusBadRequest)
		return
	}
	event := 0
	if es := q.Get("event"); es != "" {
		event, err = strconv.Atoi(es)
		if err != nil || event < 0 {
			http.Error(w, "event: must be a non-negative event index", http.StatusBadRequest)
			return
		}
	}
	res, err := s.Proof(batch, event)
	if err != nil {
		httpError(w, err)
		return
	}
	n, err := s.BatchEvents(batch)
	if err != nil {
		httpError(w, err)
		return
	}
	resp := proofResponse{
		BatchID: res.BatchID, Event: res.Event, Events: n,
		Shard: res.Shard, Segment: res.Seg, Offset: res.Off,
		Root:        hex.EncodeToString(res.Root[:]),
		Leaf:        hex.EncodeToString(res.Proof.Leaf[:]),
		Encoded:     hex.EncodeToString(res.Proof.Encode()),
		Fingerprint: s.AuditFingerprint(),
	}
	for _, st := range res.Proof.Path {
		side := "right"
		if st.Left {
			side = "left"
		}
		resp.Path = append(resp.Path, proofStepJSON{Side: side, Hash: hex.EncodeToString(st.Hash[:])})
	}
	writeJSON(w, resp)
}

// receiptResponse is the POST /v1/receipt wire format: the ranked list
// plus the signed receipt binding its hash to the audit chain.
type receiptResponse struct {
	rankResponse
	Receipt receiptJSON `json:"receipt"`
}

type receiptJSON struct {
	From        cert.Day `json:"from"`
	To          cert.Day `json:"to"`
	ListHash    string   `json:"list_hash"`
	Head        string   `json:"head"`
	Sig         string   `json:"sig"`
	Encoded     string   `json:"encoded"`
	Fingerprint string   `json:"fingerprint"`
}

// handleReceipt ranks [from, to] and logs a signed rank receipt into the
// audit stream: /v1/receipt?from=&to=. The response carries the full
// ranked list the receipt's list_hash covers (no top truncation — the
// hash binds the whole list).
func (s *Server) handleReceipt(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := parseDay(q.Get("from"))
	if err != nil {
		http.Error(w, "from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseDay(q.Get("to"))
	if err != nil {
		http.Error(w, "to: "+err.Error(), http.StatusBadRequest)
		return
	}
	list, rc, err := s.RankReceipt(r.Context(), from, to)
	if err != nil {
		httpError(w, err)
		return
	}
	det := s.Detector()
	writeJSON(w, receiptResponse{
		rankResponse: rankResponse{From: from, To: to, Aspects: det.AspectNames(), List: list},
		Receipt: receiptJSON{
			From: cert.Day(rc.From), To: cert.Day(rc.To),
			ListHash:    hex.EncodeToString(rc.ListHash[:]),
			Head:        hex.EncodeToString(rc.Head[:]),
			Sig:         hex.EncodeToString(rc.Sig[:]),
			Encoded:     hex.EncodeToString(rc.Encode()),
			Fingerprint: s.AuditFingerprint(),
		},
	})
}
