package serve

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"acobe/internal/audit"
	"acobe/internal/cert"
	"acobe/internal/persist"
)

// A manifest pins one consistent snapshot cut of a sharded server:
// manifest-<day>.mf says "every shard published snapshot-shard<k>-<day>
// for this barrier". It is written strictly after all shard snapshots are
// durable, so recovery can trust that a manifest's referenced snapshots
// exist (a missing or corrupt one falls back a generation, and a cut with
// no loadable generation fails loudly). Each shard snapshot carries its
// own WAL position; the cut is consistent because every shard's state was
// captured at the same closed-through barrier with no closes in between.
// The manifest additionally records the cross-shard batch-ID high-water
// mark at the cut, so a restart over empty WAL tails resumes numbering
// past every ID already baked behind the snapshot positions instead of
// reissuing them (a reissued ID would collide with the stale frames the
// moment a later recovery falls back a generation and scans both).
//
//	"ACMF" | version u32 LE | shard count | day i64 | batch HWM u64 |
//	[v2: per-shard chain head, length-prefixed ×shards] |
//	"ACMF" trailer | [v2: ed25519 sig over SHA-256(body)] | crc32
const (
	manifestMagic   = "ACMF"
	manifestVersion = 1
	// manifestAuditVersion marks an audit-attesting manifest: after the
	// batch high-water mark it pins every shard's WAL chain head at the
	// cut (each equal to the same-day shard snapshot's attested head), and
	// the body is followed by an ed25519 signature over its SHA-256. The
	// trailing CRC32 covers body and signature both, so the CRC stays the
	// file's last 4 bytes in both versions.
	manifestAuditVersion = 2
	manifestPrefix       = "manifest-"
	manifestSuffix       = ".mf"
)

func manifestPath(dir string, day cert.Day) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", manifestPrefix, int64(day), manifestSuffix))
}

// listManifests returns the published manifests, newest first.
func listManifests(dir string) ([]snapEntry, error) {
	out, err := listNumbered(dir, manifestPrefix, manifestSuffix, manifestSuffix+".tmp")
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].day > out[j].day })
	return out, nil
}

// manifestInfo is one decoded manifest.
type manifestInfo struct {
	version  uint32
	shards   int
	day      cert.Day
	batchHWM uint64
	// heads and sig are present for manifestAuditVersion only. signed is
	// the exact body span the signature covers (aliases the file image).
	heads  []audit.Head
	sig    [audit.SigSize]byte
	signed []byte
}

// verifySig checks an audit manifest's signature (false for version 1).
func (m *manifestInfo) verifySig(pub ed25519.PublicKey) bool {
	if m.version != manifestAuditVersion {
		return false
	}
	d := sha256.Sum256(m.signed)
	return audit.VerifyContext(pub, m.sig, audit.ContextManifest, d[:])
}

// decodeManifest parses a manifest image. The trailing 4 bytes are the
// CRC32 of everything before them (body plus, in version 2, signature).
func decodeManifest(data []byte) (m manifestInfo, err error) {
	if len(data) < 4+8 {
		return m, fmt.Errorf("serve: manifest too short for checksum")
	}
	body, stored := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != stored {
		return m, fmt.Errorf("serve: manifest checksum mismatch (stored %08x, computed %08x)", stored, got)
	}
	m.version = binary.LittleEndian.Uint32(body[4:8])
	signed := body
	switch m.version {
	case manifestVersion:
	case manifestAuditVersion:
		if len(body) < audit.SigSize {
			return m, fmt.Errorf("serve: audit manifest too short for signature")
		}
		signed = body[:len(body)-audit.SigSize]
		copy(m.sig[:], body[len(body)-audit.SigSize:])
		m.signed = signed
	default:
		return m, fmt.Errorf("serve: manifest version %d unsupported", m.version)
	}
	pr := persist.NewReader(bytes.NewReader(signed))
	if v := pr.Magic(manifestMagic); pr.Err() == nil && v != m.version {
		return m, fmt.Errorf("serve: manifest version %d unsupported", v)
	}
	m.shards = pr.Int()
	m.day = cert.Day(pr.I64())
	m.batchHWM = pr.U64()
	if pr.Err() == nil && (m.shards < 1 || m.shards > 1<<16) {
		return m, fmt.Errorf("serve: manifest declares %d shards", m.shards)
	}
	if m.version == manifestAuditVersion {
		m.heads = make([]audit.Head, m.shards)
		for k := 0; k < m.shards && pr.Err() == nil; k++ {
			hb := pr.Bytes()
			if pr.Err() == nil && len(hb) != audit.HeadSize {
				return m, fmt.Errorf("serve: manifest shard %d head is %d bytes, want %d", k, len(hb), audit.HeadSize)
			}
			copy(m.heads[k][:], hb)
		}
	}
	if v := pr.Magic(manifestMagic); pr.Err() == nil && v != m.version {
		return m, fmt.Errorf("serve: manifest trailer version %d unsupported", v)
	}
	if err := pr.Err(); err != nil {
		return m, err
	}
	return m, nil
}

// loadManifestInfo reads and decodes one manifest file.
func loadManifestInfo(path string) (manifestInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return manifestInfo{}, err
	}
	return decodeManifest(data)
}

// writeManifest publishes the manifest for a snapshot cut at day,
// atomically (tmp + fsync + rename + directory fsync). The shard
// snapshots it references are already durable.
func (s *Server) writeManifest(day cert.Day) error {
	ver := uint32(manifestVersion)
	if s.auditOn() {
		ver = manifestAuditVersion
	}
	var body bytes.Buffer
	pw := persist.NewWriter(&body)
	pw.Magic(manifestMagic, ver)
	pw.Int(len(s.shards))
	pw.I64(int64(day))
	// Batch-ID high-water mark: every part frame behind this cut's shard
	// WAL positions carries an ID allocated before those positions were
	// recorded, hence ≤ nextBatch here (IDs are monotonic and this runs
	// after every shard acked its snapshot). Recovery seeds numbering from
	// it so a restart over empty tails never reissues a baked-in ID.
	pw.U64(s.nextBatch.Load())
	if ver == manifestAuditVersion {
		// Pin every shard's chain head at this cut. Each equals the attested
		// head inside the same-day shard snapshot; the manifest cross-signs
		// them so a tampered snapshot and a tampered manifest must agree to
		// go unnoticed — and both carry signatures over their own bodies.
		for k := range s.shards {
			h := s.shards[k].snapHead
			pw.Bytes(h[:])
		}
	}
	pw.Magic(manifestMagic, ver)
	if err := pw.Err(); err != nil {
		return err
	}
	if ver == manifestAuditVersion {
		d := sha256.Sum256(body.Bytes())
		sig := audit.SignContext(s.auditPriv, audit.ContextManifest, d[:])
		body.Write(sig[:])
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(body.Bytes()))

	final := manifestPath(s.pcfg.Dir, day)
	tmp := final + ".tmp"
	f, err := s.fs.create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(body.Bytes())
	if err == nil {
		_, err = f.Write(sum[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := s.fs.rename(tmp, final); err != nil {
		return err
	}
	return s.fs.syncDir(s.pcfg.Dir)
}

// pruneSharded removes manifests beyond the retention count, shard
// snapshots no retained manifest references, and per-shard WAL segments
// no retained shard snapshot needs. Runs after the new manifest is
// published, so a crash mid-prune only leaves extra files behind.
func (s *Server) pruneSharded() error {
	mans, err := listManifests(s.pcfg.Dir)
	if err != nil {
		return err
	}
	retained := make(map[cert.Day]bool, snapRetain)
	for i, m := range mans {
		if i >= snapRetain {
			if err := s.fs.remove(m.path); err != nil {
				return err
			}
			continue
		}
		retained[m.day] = true
	}
	walDir := filepath.Join(s.pcfg.Dir, "wal")
	for k := range s.shards {
		snaps, err := listSnapshots(s.pcfg.Dir, snapShardPrefix(k))
		if err != nil {
			return err
		}
		// minSeg is the oldest WAL segment any retained generation of this
		// shard still needs; an unreadable (or unexpectedly absent)
		// retained snapshot pins the whole log (recovery may fall back to
		// it, or past it to a full replay).
		minSeg := uint64(1 << 62)
		kept := 0
		for _, e := range snaps {
			if !retained[e.day] {
				if err := s.fs.remove(e.path); err != nil {
					return err
				}
				continue
			}
			kept++
			_, p, err := readSnapshotPos(e.path)
			if err != nil {
				minSeg = 0
				continue
			}
			if p.seg < minSeg {
				minSeg = p.seg
			}
		}
		if kept < len(retained) {
			minSeg = 0
		}
		segs, err := listSegments(walDir, walShardPrefix(k))
		if err != nil {
			return err
		}
		for _, seq := range segs {
			if seq < minSeg {
				if err := s.fs.remove(walSegPath(walDir, walShardPrefix(k), seq)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
