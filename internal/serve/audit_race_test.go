package serve

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"acobe/internal/cert"
)

// TestAuditConcurrentLifecycle hammers an audited sharded server with
// everything the audit layer adds, all at once: concurrent provable
// ingest, inclusion-proof requests against freshly acked batches, signed
// rank receipts, snapshot rounds riding the close cadence, and an
// offline verifier walking the directory while it is being written. Its
// job is to give the race detector (make test-race) the audit edges: the
// proof-index map under RLock against shard-goroutine inserts, the Merkle
// scratch tree on the append path, receipt signing at rotation, and
// VerifyAudit's file reads against live appends.
//
// VerifyAudit against a live directory may legitimately fail — the final
// segment can hold a torn, not-yet-complete frame mid-append — so during
// the storm only panics and races count; the post-shutdown verify must
// pass cleanly.
func TestAuditConcurrentLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg()
	cfg.Shards = 4
	cfg.QueueSize = 32
	p := auditPersist()
	p.Dir = dir
	p.SnapshotEvery = 5
	srv, _, err := Open(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Warm up enough closed days for a model, then train it so receipts
	// rank for real during the storm.
	var (
		idMu sync.Mutex
		ids  []uint64
	)
	ack := func(id uint64) {
		idMu.Lock()
		ids = append(ids, id)
		idMu.Unlock()
	}
	for d := cert.Day(0); d <= 30; d++ {
		id, err := srv.SubmitProvable(ctx, persistDayEvents(d))
		if err != nil {
			t.Fatal(err)
		}
		ack(id)
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Retrain(ctx, 0, 25, true); err != nil {
		t.Fatal(err)
	}
	pub := append([]byte(nil), srv.auditPub()...)

	const lastDay = cert.Day(48)
	var wg sync.WaitGroup

	// Writers: several goroutines push provable slices of each open day.
	dayCh := make(chan cert.Day, 64)
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range dayCh {
				evs := persistDayEvents(d)
				var part []Event
				for i := w; i < len(evs); i += 3 {
					part = append(part, evs[i])
				}
				id, err := srv.SubmitProvable(ctx, part)
				if err != nil {
					if errors.Is(err, ErrShuttingDown) || errors.Is(err, context.Canceled) {
						return
					}
					t.Errorf("submit day %v: %v", d, err)
					return
				}
				// A batch racing past its day's close may be filtered to
				// nothing and carry no ID; only acked IDs must prove.
				if id != 0 {
					ack(id)
				}
			}
		}()
	}

	stop := make(chan struct{})

	// Proof readers: prove random acked batches while ingest runs. Every
	// acknowledged batch must prove — the index never lags an ack.
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				idMu.Lock()
				id := ids[rng.Intn(len(ids))]
				idMu.Unlock()
				n, err := srv.BatchEvents(id)
				if err != nil {
					t.Errorf("batch %d: %v", id, err)
					return
				}
				if n == 0 {
					// A batch that raced past its day's close and was
					// late-filtered to nothing: acked, logged, empty.
					continue
				}
				res, err := srv.Proof(id, rng.Intn(n))
				if err != nil {
					t.Errorf("proof of batch %d: %v", id, err)
					return
				}
				if !res.Proof.Verify(res.Root) {
					t.Errorf("batch %d: live proof does not verify", id)
					return
				}
			}
		}()
	}

	// Receipt requester: signed rank receipts over the closed range.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			to := srv.ClosedThrough()
			if to < 20 {
				continue
			}
			_, rc, err := srv.RankReceipt(ctx, to-5, to)
			if err != nil {
				if errors.Is(err, ErrNoModel) || errors.Is(err, ErrShuttingDown) {
					continue
				}
				t.Errorf("receipt through %v: %v", to, err)
				return
			}
			if !rc.VerifySig(pub) {
				t.Errorf("live receipt signature does not verify")
				return
			}
		}
	}()

	// Verifier under load: walk the directory while it is written. Errors
	// are expected (torn final frames mid-append); panics and races are
	// the failures this goroutine exists to provoke.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = VerifyAudit(dir, pub)
		}
	}()

	// Closer: staggered day closes (each fifth close snapshots) chasing
	// the writers.
	for d := cert.Day(31); d <= lastDay; d++ {
		for w := 0; w < 3; w++ {
			dayCh <- d
		}
		if d%3 == 0 {
			time.Sleep(time.Millisecond) // let writers race the barrier
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatalf("close day %v: %v", d, err)
		}
	}
	close(dayCh)
	close(stop)
	wg.Wait()
	shutdown(t, srv)

	// Quiesced, the full chain must verify, and a recovery must keep a
	// provable suffix of everything acked during the storm.
	if _, err := VerifyAudit(dir, pub); err != nil {
		t.Fatalf("verify after storm: %v", err)
	}
	s2, _ := openAudit(t, dir, 4)
	idMu.Lock()
	all := append([]uint64(nil), ids...)
	idMu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	assertProvableSuffix(t, s2, all)
	shutdown(t, s2)
}
