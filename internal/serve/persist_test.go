package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/testkit"
)

// persistCfg is the shared server shape for persistence tests: the real
// CERT ingestor (persistence requires a StatefulIngestor) with groups on,
// so snapshots exercise every state blob.
func persistCfg() Config {
	return Config{
		Users:      testUsers,
		Groups:     testGroups,
		Membership: testMember,
		Start:      0,
		Deviation:  testDevCfg(),
		QueueSize:  16,
	}
}

// persistDayEvents is a deterministic synthetic day: logons, device
// connects with rotating hosts, file and upload activity — enough variety
// to move the first-seen trackers and several features.
func persistDayEvents(d cert.Day) []Event {
	evs := make([]Event, 0, 4*len(testUsers))
	for i, u := range testUsers {
		at := func(h int) time.Time { return d.Date().Add(time.Duration(h) * time.Hour) }
		evs = append(evs,
			Event{Cert: &cert.Event{Type: cert.EventLogon, Time: at(8 + i%3), User: u, Activity: cert.ActLogon}},
			Event{Cert: &cert.Event{Type: cert.EventDevice, Time: at(10), User: u, PC: fmt.Sprintf("PC-%d", (int(d)+i)%4), Activity: cert.ActConnect}},
			Event{Cert: &cert.Event{Type: cert.EventFile, Time: at(11), User: u, Activity: cert.ActFileOpen, Direction: cert.DirLocal, FileID: fmt.Sprintf("F%d", (int(d)+i)%5)}},
		)
		if (int(d)+i)%3 == 0 {
			evs = append(evs, Event{Cert: &cert.Event{Type: cert.EventHTTP, Time: at(14), User: u, Activity: cert.ActUpload, FileType: "doc", Domain: fmt.Sprintf("d%d.com", i%2)}})
		}
	}
	return evs
}

// feedDays submits and closes days [from, to].
func feedDays(t *testing.T, s *Server, from, to cert.Day) {
	t.Helper()
	ctx := context.Background()
	for d := from; d <= to; d++ {
		if err := s.Submit(ctx, persistDayEvents(d)); err != nil {
			t.Fatalf("submit day %v: %v", d, err)
		}
		if err := s.CloseDay(ctx, d); err != nil {
			t.Fatalf("close day %v: %v", d, err)
		}
	}
}

// serverStateBytes serializes the full ingest state (extractor, individual
// and group windows). Byte equality is deep state equality — every encoder
// is deterministic.
func serverStateBytes(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, sh := range s.shards {
		if sh.ing == nil {
			continue
		}
		if err := sh.ing.(StatefulIngestor).SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		if err := sh.ind.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if gs := s.groupStream(); gs != nil {
		if err := s.groupTable().SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		if err := gs.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// referenceStateBytes runs an uninterrupted in-memory server over days
// [0, to] and returns its state encoding.
func referenceStateBytes(t *testing.T, to cert.Day) []byte {
	t.Helper()
	srv, err := New(persistCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	feedDays(t, srv, 0, to)
	return serverStateBytes(t, srv)
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestPersistCleanShutdownRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	a, info, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotLoaded || info.ReplayedRecords != 0 || info.ClosedThrough != -1 {
		t.Fatalf("fresh open reported recovery: %+v", info)
	}
	feedDays(t, a, 0, 24)
	// Two open-day batches that must survive the restart as buffered.
	if err := a.Submit(ctx, persistDayEvents(25)); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(ctx, persistDayEvents(26)); err != nil {
		t.Fatal(err)
	}
	wantState := serverStateBytes(t, a)
	wantIngested := a.Status().Ingested
	shutdown(t, a)

	b, info, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if info.ClosedThrough != 24 {
		t.Fatalf("recovered ClosedThrough = %v, want 24", info.ClosedThrough)
	}
	if info.TornBytes != 0 {
		t.Fatalf("clean shutdown left %d torn bytes", info.TornBytes)
	}
	want25, want26 := len(persistDayEvents(25)), len(persistDayEvents(26))
	if info.BufferedEvents[25] != want25 || info.BufferedEvents[26] != want26 {
		t.Fatalf("recovered buffered events %v, want day25=%d day26=%d", info.BufferedEvents, want25, want26)
	}
	if got := serverStateBytes(t, b); !bytes.Equal(got, wantState) {
		t.Fatal("recovered state differs from pre-shutdown state")
	}
	if got := b.Status().Ingested; got != wantIngested {
		t.Fatalf("recovered ingested counter = %d, want %d", got, wantIngested)
	}

	// Resuming the stream must land exactly where an uninterrupted run
	// does. Days 25 and 26 were already submitted (recovered as buffered),
	// so the resume closes them without resubmitting, then continues.
	for d := cert.Day(25); d <= 26; d++ {
		if err := b.CloseDay(ctx, d); err != nil {
			t.Fatalf("close recovered day %v: %v", d, err)
		}
	}
	feedDays(t, b, 27, 30)
	if got, want := serverStateBytes(t, b), referenceStateBytes(t, 30); !bytes.Equal(got, want) {
		t.Fatal("resumed state differs from uninterrupted run")
	}
}

func TestPersistBoundedReplay(t *testing.T) {
	dir := t.TempDir()
	pc := PersistConfig{Dir: dir, SnapshotEvery: 10, SegmentBytes: 4096}

	a, _, err := Open(persistCfg(), pc)
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, 36)
	shutdown(t, a)

	// Snapshots landed at days 9, 19, 29; only the newest two survive.
	snaps, err := listSnapshots(dir, snapPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].day != 29 || snaps[1].day != 19 {
		t.Fatalf("retained snapshots = %v, want days 29 and 19", snaps)
	}

	b, info, err := Open(persistCfg(), pc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if !info.SnapshotLoaded || info.SnapshotDay != 29 {
		t.Fatalf("recovered from snapshot day %v (loaded=%v), want 29", info.SnapshotDay, info.SnapshotLoaded)
	}
	// The replay is bounded to the tail behind the snapshot: days 30..36,
	// one event batch + one close barrier each.
	if info.ReplayedRecords != 14 {
		t.Fatalf("replayed %d records, want 14 (7 days × 2)", info.ReplayedRecords)
	}
	if got, want := serverStateBytes(t, b), referenceStateBytes(t, 36); !bytes.Equal(got, want) {
		t.Fatal("snapshot+tail recovery differs from uninterrupted run")
	}
}

func TestPersistTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	a, _, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, 10)
	want := serverStateBytes(t, a)
	shutdown(t, a)

	// Simulate a crash mid-append: garbage half-frame at the tail.
	segs, err := listSegments(filepath.Join(dir, "wal"), walPrefix)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments (%v)", err)
	}
	last := walSegPath(filepath.Join(dir, "wal"), walPrefix, segs[len(segs)-1])
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, info, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if info.TornBytes != 11 {
		t.Fatalf("truncated %d torn bytes, want 11", info.TornBytes)
	}
	if info.ClosedThrough != 10 {
		t.Fatalf("recovered ClosedThrough = %v, want 10", info.ClosedThrough)
	}
	if got := serverStateBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("state after torn-tail truncation differs from pre-crash state")
	}
}

func TestPersistFailStop(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	plan := &testkit.FaultPlan{Name: "wal-", Op: "write", After: 2000}
	a, _, err := Open(persistCfg(), PersistConfig{
		Dir:   dir,
		Hooks: Hooks{WrapWriter: func(name string, f WritableFile) WritableFile { return plan.WrapWriter(name, f) }, BeforeOp: plan.BeforeOp},
	})
	if err != nil {
		t.Fatal(err)
	}
	var failedAt cert.Day = -1
	for d := cert.Day(0); d <= 40; d++ {
		if err := a.Submit(ctx, persistDayEvents(d)); err != nil {
			if !errors.Is(err, ErrPersistenceFailed) || !errors.Is(err, testkit.ErrInjected) {
				t.Fatalf("submit failure = %v, want ErrPersistenceFailed wrapping ErrInjected", err)
			}
			failedAt = d
			break
		}
		if err := a.CloseDay(ctx, d); err != nil {
			if !errors.Is(err, ErrPersistenceFailed) {
				t.Fatalf("close failure = %v, want ErrPersistenceFailed", err)
			}
			failedAt = d
			break
		}
	}
	if failedAt < 0 {
		t.Fatal("fault never fired")
	}
	// Fail-stop: all later work is refused immediately with the latched
	// error; nothing half-applies.
	if err := a.Submit(ctx, persistDayEvents(failedAt+1)); !errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("submit after failure = %v, want ErrPersistenceFailed", err)
	}
	if err := a.CloseDay(ctx, failedAt+1); !errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("close after failure = %v, want ErrPersistenceFailed", err)
	}
	if st := a.Status(); st.PersistError == "" {
		t.Fatal("status does not surface the persistence failure")
	}
	shutdown(t, a)

	// The surviving prefix recovers into exactly the state of an
	// uninterrupted run over the durable days.
	b, info, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if info.ClosedThrough >= failedAt {
		t.Fatalf("recovered ClosedThrough %v not behind failure day %v", info.ClosedThrough, failedAt)
	}
	if info.ClosedThrough >= 0 {
		if got, want := serverStateBytes(t, b), referenceStateBytes(t, info.ClosedThrough); !bytes.Equal(got, want) {
			t.Fatal("recovered prefix state differs from uninterrupted run over the same days")
		}
	}
}

func TestPersistSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	pc := PersistConfig{Dir: dir, SnapshotEvery: 5}
	a, _, err := Open(persistCfg(), pc)
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, 22) // snapshots at 4, 9, 14, 19; retained: 19, 14
	shutdown(t, a)

	// Corrupt the newest snapshot in the middle; recovery must fall back
	// to the previous one and replay the longer tail.
	data, err := os.ReadFile(snapPath(dir, snapPrefix, 19))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snapPath(dir, snapPrefix, 19), data, 0o644); err != nil {
		t.Fatal(err)
	}

	b, info, err := Open(persistCfg(), pc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if !info.SnapshotLoaded || info.SnapshotDay != 14 {
		t.Fatalf("fell back to snapshot day %v (loaded=%v), want 14", info.SnapshotDay, info.SnapshotLoaded)
	}
	if info.ClosedThrough != 22 {
		t.Fatalf("recovered ClosedThrough = %v, want 22", info.ClosedThrough)
	}
	if got, want := serverStateBytes(t, b), referenceStateBytes(t, 22); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery differs from uninterrupted run")
	}
}
