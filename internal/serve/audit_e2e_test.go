package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"acobe/internal/cert"
)

// auditCfg / auditPersist are the shared shapes for audit tests.
func auditPersist() PersistConfig {
	return PersistConfig{Audit: true, SnapshotEvery: 8, SegmentBytes: 4096}
}

// openAudit opens an audited server in dir, failing the test on error.
func openAudit(t *testing.T, dir string, shards int) (*Server, *RecoverInfo) {
	t.Helper()
	cfg := persistCfg()
	cfg.Shards = shards
	p := auditPersist()
	p.Dir = dir
	s, info, err := Open(cfg, p)
	if err != nil {
		t.Fatalf("open audited server: %v", err)
	}
	return s, info
}

// feedDaysProvable feeds days [from, to] via SubmitProvable, returning the
// batch IDs and the batch each day's events landed under.
func feedDaysProvable(t *testing.T, s *Server, from, to cert.Day) []uint64 {
	t.Helper()
	ctx := context.Background()
	var ids []uint64
	for d := from; d <= to; d++ {
		id, err := s.SubmitProvable(ctx, persistDayEvents(d))
		if err != nil {
			t.Fatalf("submit day %v: %v", d, err)
		}
		if id == 0 {
			t.Fatalf("day %v: audited submit assigned no batch ID", d)
		}
		ids = append(ids, id)
		if err := s.CloseDay(ctx, d); err != nil {
			t.Fatalf("close day %v: %v", d, err)
		}
	}
	return ids
}

// verifyProof checks one ProofResult end to end with the audit package's
// verifier.
func verifyProof(t *testing.T, res ProofResult) {
	t.Helper()
	if !res.Proof.Verify(res.Root) {
		t.Fatalf("proof for batch %d event %d does not verify against its root", res.BatchID, res.Event)
	}
}

// assertProvableSuffix checks a restarted server's proof index: every
// batch ID must either prove (with a verifying path) or be unknown
// because pruning dropped its segments — and once one ID is provable,
// every later one must be too (the index covers a contiguous suffix of
// the log). At least the newest batch is always provable.
func assertProvableSuffix(t *testing.T, s *Server, ids []uint64) {
	t.Helper()
	seen := false
	for _, id := range ids {
		n, err := s.BatchEvents(id)
		if errors.Is(err, ErrUnknownBatch) {
			if seen {
				t.Fatalf("batch %d unknown after a provable earlier batch — hole in the index", id)
			}
			continue
		}
		if err != nil {
			t.Fatalf("batch %d: %v", id, err)
		}
		seen = true
		if n == 0 {
			// A batch late-filtered to nothing is known but has no events
			// to prove.
			continue
		}
		res, err := s.Proof(id, n-1)
		if err != nil {
			t.Fatalf("proof(%d, %d): %v", id, n-1, err)
		}
		verifyProof(t, res)
	}
	if !seen {
		t.Fatal("no batch provable after restart")
	}
}

// TestAuditEndToEnd drives the full audited lifecycle on one shard:
// provable ingest, inclusion proofs for every acked batch, a signed rank
// receipt, clean shutdown, an offline verify pass, and a recovery that
// restores provability.
func TestAuditEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s, info := openAudit(t, dir, 1)
	if info.SnapshotLoaded || info.ReplayedRecords != 0 {
		t.Fatalf("fresh open reported recovery: %+v", info)
	}
	if s.AuditFingerprint() == "" {
		t.Fatal("audited server reports no key fingerprint")
	}
	ids := feedDaysProvable(t, s, 0, 20)

	// Every acked batch yields a verifying proof for every event.
	for _, id := range ids {
		n, err := s.BatchEvents(id)
		if err != nil {
			t.Fatalf("batch %d: %v", id, err)
		}
		if n == 0 {
			t.Fatalf("batch %d holds no events", id)
		}
		for _, ev := range []int{0, n / 2, n - 1} {
			res, err := s.Proof(id, ev)
			if err != nil {
				t.Fatalf("proof(%d, %d): %v", id, ev, err)
			}
			verifyProof(t, res)
		}
		// Past-the-end and unknown-batch requests are typed errors.
		if _, err := s.Proof(id, n); !errors.Is(err, ErrUnknownEvent) {
			t.Fatalf("proof past batch end: %v", err)
		}
	}
	if _, err := s.Proof(1<<60, 0); !errors.Is(err, ErrUnknownBatch) {
		t.Fatalf("proof of unknown batch: %v", err)
	}

	// A signed rank receipt, verifiable with the public key.
	if err := s.Retrain(ctx, 0, 14, true); err != nil {
		t.Fatal(err)
	}
	list, rc, err := s.RankReceipt(ctx, 15, 20)
	if err != nil {
		t.Fatalf("rank receipt: %v", err)
	}
	if len(list) == 0 {
		t.Fatal("receipt over empty ranking")
	}
	pub := s.auditPub()
	if !rc.VerifySig(pub) {
		t.Fatal("receipt signature does not verify")
	}
	bad := rc
	bad.ListHash[0] ^= 1
	if bad.VerifySig(pub) {
		t.Fatal("receipt signature verified a mutated list hash")
	}

	shutdown(t, s)

	// Offline verification of the cleanly shut-down directory.
	rep, err := VerifyAudit(dir, pub)
	if err != nil {
		t.Fatalf("verify clean directory: %v", err)
	}
	// Snapshot pruning drops early segments, so the walk covers a suffix
	// of the batches — never zero, and everything it covers verified.
	if rep.Frames == 0 || rep.Seals == 0 || rep.Batches == 0 || rep.Batches > len(ids) || rep.Receipts != 1 {
		t.Fatalf("verify report looks wrong: %+v", rep)
	}
	if rep.Snapshots == 0 {
		t.Fatalf("no snapshots verified: %+v", rep)
	}

	// Recovery restores the proof index over the surviving (post-pruning)
	// log: recent batches stay provable; pruned ones are unknown, not
	// wrong.
	s2, info2 := openAudit(t, dir, 1)
	defer shutdown(t, s2)
	if !info2.SnapshotLoaded {
		t.Fatalf("no snapshot recovered: %+v", info2)
	}
	assertProvableSuffix(t, s2, ids)
	// The restarted server appends onto the same chain without breaking it.
	feedDaysProvable(t, s2, 21, 24)
	shutdown(t, s2)
	if _, err := VerifyAudit(dir, pub); err != nil {
		t.Fatalf("verify after restart+append: %v", err)
	}

	// Reopening with audit off must refuse the version-2 stream loudly.
	cfg := persistCfg()
	if _, _, err := Open(cfg, PersistConfig{Dir: dir}); err == nil {
		t.Fatal("opening an audited directory with audit off succeeded")
	}
	s3, _ := openAudit(t, dir, 1)
	shutdown(t, s3)
}

// TestAuditShardedEndToEnd drives the audited lifecycle across shard
// counts: cross-shard batches prove every event through the global index
// order, manifests attest per-shard heads, and recovery keeps proofs.
func TestAuditShardedEndToEnd(t *testing.T) {
	for _, shards := range []int{3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			s, _ := openAudit(t, dir, shards)
			ids := feedDaysProvable(t, s, 0, 16)
			for _, id := range ids {
				n, err := s.BatchEvents(id)
				if err != nil {
					t.Fatalf("batch %d: %v", id, err)
				}
				for ev := 0; ev < n; ev++ {
					res, err := s.Proof(id, ev)
					if err != nil {
						t.Fatalf("proof(%d, %d): %v", id, ev, err)
					}
					verifyProof(t, res)
				}
			}
			pub := s.auditPub()
			shutdown(t, s)

			rep, err := VerifyAudit(dir, pub)
			if err != nil {
				t.Fatalf("verify: %v", err)
			}
			if rep.Shards != shards || rep.Manifests == 0 {
				t.Fatalf("verify report looks wrong: %+v", rep)
			}

			s2, info := openAudit(t, dir, shards)
			if !info.SnapshotLoaded {
				t.Fatalf("no manifest generation recovered: %+v", info)
			}
			assertProvableSuffix(t, s2, ids)
			shutdown(t, s2)
			if _, err := VerifyAudit(dir, pub); err != nil {
				t.Fatalf("verify after restart: %v", err)
			}
		})
	}
}

// TestAuditOffUnchangedOnDisk proves the audit-off path still writes
// version-1 artifacts: the format gate, not a behavior test (the whole
// pre-audit test suite runs against the same path).
func TestAuditOffUnchangedOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, s, 0, 3)
	if _, err := s.SubmitProvable(context.Background(), persistDayEvents(4)); !errors.Is(err, ErrAuditDisabled) {
		t.Fatalf("SubmitProvable without audit: %v", err)
	}
	if _, err := s.Proof(1, 0); !errors.Is(err, ErrAuditDisabled) {
		t.Fatalf("Proof without audit: %v", err)
	}
	if _, _, err := s.RankReceipt(context.Background(), 0, 3); !errors.Is(err, ErrAuditDisabled) {
		t.Fatalf("RankReceipt without audit: %v", err)
	}
	if got := s.AuditFingerprint(); got != "" {
		t.Fatalf("fingerprint on unaudited server: %q", got)
	}
	shutdown(t, s)
	// An unaudited directory must refuse to open with audit on.
	cfg := persistCfg()
	p := auditPersist()
	p.Dir = dir
	if _, _, err := Open(cfg, p); err == nil {
		t.Fatal("opening an unaudited directory with audit on succeeded")
	}
}
