package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/obs"
	"acobe/internal/testkit"
)

// newObsServer builds an instrumented server over the stub measurement
// factory at the given shard count.
func newObsServer(t *testing.T, shards int) (*Server, *obs.Observer) {
	t.Helper()
	o := obs.NewObserver()
	srv, err := New(Config{
		Users:           testUsers,
		Groups:          testGroups,
		Membership:      testMember,
		Start:           0,
		Deviation:       testDevCfg(),
		IngestorFactory: stubShardFactory(testUsers),
		Shards:          shards,
		DetectorOptions: testDetOpts(),
		QueueSize:       16,
		Observer:        o,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, o
}

// testEvent is one valid CERT logon for a user on a day.
func testEvent(user string, d cert.Day) Event {
	return Event{Cert: &cert.Event{Type: cert.EventLogon, Activity: cert.ActLogon,
		Time: d.Date().Add(9 * time.Hour), User: user, PC: "PC-1"}}
}

// feedDays drives a deterministic ingest schedule: for each day, one
// batch holding (1 + (d+u) mod 3) events per user, then the day's close.
// Returns the number of events submitted.
func feedObsDays(t *testing.T, srv *Server, days int) int {
	t.Helper()
	ctx := context.Background()
	total := 0
	for d := cert.Day(0); d < cert.Day(days); d++ {
		var batch []Event
		for u, name := range testUsers {
			for i := 0; i < 1+(int(d)+u)%3; i++ {
				batch = append(batch, testEvent(name, d))
			}
		}
		if err := srv.Submit(ctx, batch); err != nil {
			t.Fatal(err)
		}
		total += len(batch)
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	return total
}

// TestMetricsParityAcrossShards is the merge-correctness proof: at any
// shard count, the merged scrape accounts for every submitted event
// exactly once — fresh applies plus late drops sum to the submit counter.
func TestMetricsParityAcrossShards(t *testing.T) {
	ctx := context.Background()
	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			srv, _ := newObsServer(t, shards)
			total := feedObsDays(t, srv, 5)

			// A batch aimed at an already-closed day must surface as late
			// drops, not vanish.
			lateBatch := []Event{testEvent("u0", 0), testEvent("u3", 1), testEvent("u5", 0)}
			if err := srv.Submit(ctx, lateBatch); err != nil {
				t.Fatal(err)
			}
			total += len(lateBatch)
			// The next barrier guarantees the late batch drained.
			if err := srv.CloseDay(ctx, 5); err != nil {
				t.Fatal(err)
			}

			snap := srv.MetricsSnapshot()
			if snap == nil {
				t.Fatal("instrumented server returned nil snapshot")
			}
			if got := snap.Counter(obs.CounterEventsSubmitted); got != int64(total) {
				t.Fatalf("events_submitted_total = %d, want %d", got, total)
			}
			var accounted int64
			for _, sh := range snap.Shards {
				accounted += sh.Ingested + sh.Late
			}
			if accounted != int64(total) {
				t.Fatalf("sum(ingested+late) = %d, want every one of %d events counted exactly once", accounted, total)
			}
			if len(snap.Shards) != shards {
				t.Fatalf("shard rows = %d, want %d", len(snap.Shards), shards)
			}
			if got := snap.Counter(obs.CounterDayCloses); got != 6 {
				t.Fatalf("day_closes_total = %d, want 6", got)
			}
			if got := snap.Stage(obs.StageSubmit).Count; got != 6 {
				t.Fatalf("submit stage count = %d, want 6 batches", got)
			}
			if snap.Stage(obs.StageApply).Count == 0 {
				t.Fatal("apply stage recorded nothing")
			}
			// The same numbers must flow through the status report.
			st := srv.Status()
			if st.Ingested+st.Late != int64(total) {
				t.Fatalf("status ingested+late = %d, want %d", st.Ingested+st.Late, total)
			}
			if st.Metrics == nil || st.Metrics.Counter(obs.CounterEventsSubmitted) != int64(total) {
				t.Fatalf("status metrics disagree with scrape: %+v", st.Metrics)
			}
		})
	}
}

// normalizeStatus zeroes the wall-clock-dependent fields so the report
// diffs stably: uptimes, every latency statistic, and the queue
// high-water marks (scheduling-dependent). Counts stay.
func normalizeStatus(st *Status) {
	st.UptimeSeconds = 0
	if st.Metrics == nil {
		return
	}
	st.Metrics.UptimeSeconds = 0
	for i := range st.Metrics.Stages {
		s := &st.Metrics.Stages[i]
		s.MeanUS, s.P50US, s.P90US, s.P99US, s.MaxUS = 0, 0, 0, 0, 0
	}
	for i := range st.Metrics.Shards {
		st.Metrics.Shards[i].QueueHWM = 0
	}
}

// TestStatusGolden pins the versioned /v1/status schema over real HTTP at
// one and four shards: field names, nesting, and the deterministic counts
// are all part of the contract.
func TestStatusGolden(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			srv, _ := newObsServer(t, shards)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			var lines strings.Builder
			for _, name := range testUsers {
				b, err := json.Marshal(testEvent(name, 0))
				if err != nil {
					t.Fatal(err)
				}
				lines.Write(b)
				lines.WriteByte('\n')
			}
			resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(lines.String()))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest: %d", resp.StatusCode)
			}
			for d := 0; d <= 1; d++ {
				resp, err := ts.Client().Post(ts.URL+fmt.Sprintf("/v1/close?day=%d", d), "", nil)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("close day %d: %d", d, resp.StatusCode)
				}
			}

			resp, err = ts.Client().Get(ts.URL + "/v1/status")
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status: %d %s", resp.StatusCode, body)
			}
			var st Status
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatalf("status decode: %v\n%s", err, body)
			}
			if st.SchemaVersion != StatusSchemaVersion {
				t.Fatalf("schema_version = %d, want %d", st.SchemaVersion, StatusSchemaVersion)
			}
			normalizeStatus(&st)
			got, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			testkit.Golden(t, fmt.Sprintf("status_shards%d.json", shards), append(got, '\n'))
		})
	}
}

// TestMetricsScrape exercises GET /metrics end to end at one and four
// shards: content type, the stable family names, and counter values that
// must match what was submitted.
func TestMetricsScrape(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			srv, _ := newObsServer(t, shards)
			total := feedObsDays(t, srv, 3)
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			resp, err := ts.Client().Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("metrics: %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
				t.Fatalf("content type %q is not the text exposition format", ct)
			}
			out := string(body)
			for _, want := range []string{
				fmt.Sprintf("acobe_events_submitted_total %d", total),
				fmt.Sprintf("acobe_shards %d", shards),
				fmt.Sprintf("acobe_users %d", len(testUsers)),
				"acobe_day_closes_total 3",
				`acobe_stage_duration_seconds_count{stage="ingest_submit"} 3`,
				fmt.Sprintf(`acobe_shard_ingested_events_total{shard="%d"}`, shards-1),
				"acobe_closed_through_day 2",
			} {
				if !strings.Contains(out, want) {
					t.Fatalf("scrape missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestHandlerOptions proves the composable surface: metrics and pprof
// mount and unmount per option, and a server without an observer still
// answers /metrics (reporting the observer disabled).
func TestHandlerOptions(t *testing.T) {
	srv := newTestServer(t, newStubIngestor(t, 0), 16)

	get := func(h http.Handler, path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	// Default surface: metrics and healthz on, pprof off.
	h := srv.Handler()
	if rec := get(h, "/metrics"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "observer disabled") {
		t.Fatalf("uninstrumented /metrics: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("default healthz: %d", rec.Code)
	}
	if rec := get(h, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof mounted by default: %d", rec.Code)
	}

	// Options flip each endpoint.
	h = srv.Handler(WithMetrics(false), WithHealthz(false), WithPprof(true))
	if rec := get(h, "/metrics"); rec.Code != http.StatusNotFound {
		t.Fatalf("metrics after WithMetrics(false): %d", rec.Code)
	}
	if rec := get(h, "/healthz"); rec.Code != http.StatusNotFound {
		t.Fatalf("healthz after WithHealthz(false): %d", rec.Code)
	}
	if rec := get(h, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Fatalf("pprof after WithPprof(true): %d", rec.Code)
	}
}

// TestConcurrentScrapeIngestRetrain runs scrapes, ingest, day closes, and
// retrains against each other — the race detector's view of the
// observer's atomics and the status overlay.
func TestConcurrentScrapeIngestRetrain(t *testing.T) {
	srv, o := newObsServer(t, 3)
	ctx := context.Background()
	var stop atomic.Bool
	var wg sync.WaitGroup

	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_ = srv.Status()
				_ = obs.WritePrometheus(io.Discard, srv.MetricsSnapshot(), obs.Gauges{})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			err := srv.Retrain(ctx, 0, 10, true)
			if err != nil && err != ErrRetrainInProgress {
				// Fit errors on a short history are expected; a panic or
				// race is what this test is for.
				time.Sleep(time.Millisecond)
			}
		}
	}()

	for d := cert.Day(0); d <= 20; d++ {
		batch := []Event{testEvent("u0", d), testEvent("u4", d), testEvent("u5", d)}
		if err := srv.Submit(ctx, batch); err != nil {
			t.Fatal(err)
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if snap := o.Snapshot(); snap.Counter(obs.CounterDayCloses) != 21 {
		t.Fatalf("day closes = %d, want 21", snap.Counter(obs.CounterDayCloses))
	}
}
