package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"acobe/internal/cert"
)

// These are the crash-safety properties of the WAL reader, checked
// exhaustively rather than by example: a crash can cut the log at any byte
// and flip bits in the tail, and whatever survives must decode to a prefix
// of what was written — never a reordering, duplication, or fabrication.

// buildWALImage assembles a segment image the way the appender does:
// header, then for each day an events frame followed by a close frame.
func buildWALImage(t *testing.T, seq uint64, days int) []byte {
	t.Helper()
	var buf bytes.Buffer
	var hdr [walHeaderSize]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	buf.Write(hdr[:])
	for d := cert.Day(0); d < cert.Day(days); d++ {
		body, err := json.Marshal(persistDayEvents(d))
		if err != nil {
			t.Fatal(err)
		}
		payload := append([]byte{recEvents}, body...)
		buf.Write(encodeFrame(payload))
		var cp [9]byte
		cp[0] = recClose
		binary.LittleEndian.PutUint64(cp[1:], uint64(int64(d)))
		buf.Write(encodeFrame(cp[:]))
	}
	return buf.Bytes()
}

// samePrefix asserts frames equals want[:len(frames)] exactly (offsets and
// payload bytes).
func samePrefix(t *testing.T, frames, want []walFrame, what string) {
	t.Helper()
	if len(frames) > len(want) {
		t.Fatalf("%s: %d frames parsed, only %d written (fabricated frames)", what, len(frames), len(want))
	}
	for i, fr := range frames {
		if fr.off != want[i].off {
			t.Fatalf("%s: frame %d at offset %d, want %d (reordered)", what, i, fr.off, want[i].off)
		}
		if !bytes.Equal(fr.payload, want[i].payload) {
			t.Fatalf("%s: frame %d payload differs from what was written", what, i)
		}
	}
}

// TestWALPrefixAtEveryTruncation cuts a segment image at every byte offset
// and checks that the parser returns exactly the maximal whole-frame prefix:
// every frame wholly inside the cut, in order, and nothing else.
func TestWALPrefixAtEveryTruncation(t *testing.T) {
	full := buildWALImage(t, 1, 9)
	_, want, fullGood, hdrOK := parseSegment(full)
	if !hdrOK || fullGood != len(full) {
		t.Fatalf("intact image: goodLen=%d of %d, hdrOK=%v", fullGood, len(full), hdrOK)
	}
	for k := 0; k <= len(full); k++ {
		seq, frames, goodLen, hdrOK := parseSegment(full[:k])
		if !hdrOK {
			if k >= walHeaderSize {
				t.Fatalf("cut at %d: valid header rejected", k)
			}
			if len(frames) != 0 || goodLen != 0 {
				t.Fatalf("cut at %d: invalid header but frames=%d goodLen=%d", k, len(frames), goodLen)
			}
			continue
		}
		if seq != 1 {
			t.Fatalf("cut at %d: seq = %d, want 1", k, seq)
		}
		if goodLen > k {
			t.Fatalf("cut at %d: goodLen %d past the cut", k, goodLen)
		}
		samePrefix(t, frames, want, "cut")
		// Maximality: the next written frame must not fit inside the cut.
		if len(frames) < len(want) {
			nf := want[len(frames)]
			if nf.off+8+len(nf.payload) <= k {
				t.Fatalf("cut at %d: frame %d fits wholly inside the cut but was dropped", k, len(frames))
			}
		}
		if goodLen != walHeaderSize+framesSpan(frames) {
			t.Fatalf("cut at %d: goodLen %d does not cover exactly the parsed frames", k, goodLen)
		}
	}
}

func framesSpan(frames []walFrame) int {
	n := 0
	for _, fr := range frames {
		n += 8 + len(fr.payload)
	}
	return n
}

// TestWALPrefixUnderBitFlips flips every byte of a segment image in turn.
// Frames wholly before the flipped byte must come back untouched; the
// damaged frame and everything behind it must be dropped, never mangled
// into something new.
func TestWALPrefixUnderBitFlips(t *testing.T) {
	full := buildWALImage(t, 1, 6)
	_, want, _, _ := parseSegment(full)
	data := make([]byte, len(full))
	for x := 0; x < len(full); x++ {
		copy(data, full)
		data[x] ^= 0xff
		_, frames, goodLen, hdrOK := parseSegment(data)
		if x < 8 { // magic or version damaged
			if hdrOK {
				t.Fatalf("flip at %d: corrupted header accepted", x)
			}
			continue
		}
		if !hdrOK {
			t.Fatalf("flip at %d: header intact but rejected", x)
		}
		if goodLen > len(data) {
			t.Fatalf("flip at %d: goodLen %d past the data", x, goodLen)
		}
		samePrefix(t, frames, want, "flip")
		// The flip lands in the seq field (frames unaffected) or inside
		// frame i; everything before i must survive, i itself must not.
		if x < walHeaderSize {
			if len(frames) != len(want) {
				t.Fatalf("flip at %d (seq field): %d frames, want all %d", x, len(frames), len(want))
			}
			continue
		}
		hit := -1
		for i, fr := range want {
			if x >= fr.off && x < fr.off+8+len(fr.payload) {
				hit = i
				break
			}
		}
		if hit < 0 {
			t.Fatalf("flip at %d: offset in no frame", x)
		}
		if len(frames) != hit {
			t.Fatalf("flip at %d inside frame %d: parser returned %d frames", x, hit, len(frames))
		}
	}
}

// TestPersistRecoveryAtOffsets drives a real persisted server, then crops
// its WAL at a spread of byte offsets and recovers from each cropped copy.
// Recovery must land in exactly the state of an uninterrupted run over the
// surviving closed days (accumulator deep-equality via the deterministic
// state encoding), and re-ingesting the missing suffix must converge to the
// uninterrupted full run.
func TestPersistRecoveryAtOffsets(t *testing.T) {
	const lastDay = 8
	ctx := context.Background()
	src := t.TempDir()
	a, _, err := Open(persistCfg(), PersistConfig{Dir: src})
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, lastDay)
	shutdown(t, a)
	segs, err := listSegments(filepath.Join(src, "wal"), walPrefix)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want a single WAL segment, got %v (%v)", segs, err)
	}
	full, err := os.ReadFile(walSegPath(filepath.Join(src, "wal"), walPrefix, segs[0]))
	if err != nil {
		t.Fatal(err)
	}

	refCache := map[cert.Day][]byte{}
	ref := func(d cert.Day) []byte {
		if b, ok := refCache[d]; ok {
			return b
		}
		b := referenceStateBytes(t, d)
		refCache[d] = b
		return b
	}

	stride := len(full)/17 + 1
	for k := 0; k <= len(full); k += stride {
		dir := t.TempDir()
		walDir := filepath.Join(dir, "wal")
		if err := os.MkdirAll(walDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walSegPath(walDir, walPrefix, 1), full[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		b, info, err := Open(persistCfg(), PersistConfig{Dir: dir})
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", k, err)
		}
		if info.ClosedThrough > lastDay {
			t.Fatalf("cut at %d: recovered days beyond what was written", k)
		}
		if got := serverStateBytes(t, b); !bytes.Equal(got, ref(info.ClosedThrough)) {
			t.Fatalf("cut at %d: recovered state (closed through %v) differs from uninterrupted run", k, info.ClosedThrough)
		}
		// Re-ingest the suffix: durable-but-open batches are only closed
		// (resubmitting would double-ingest), lost ones are resubmitted.
		for d := info.ClosedThrough + 1; d <= lastDay; d++ {
			if info.BufferedEvents[d] == 0 {
				if err := b.Submit(ctx, persistDayEvents(d)); err != nil {
					t.Fatalf("cut at %d: resubmit day %v: %v", k, d, err)
				}
			} else if info.BufferedEvents[d] != len(persistDayEvents(d)) {
				t.Fatalf("cut at %d: day %v recovered with %d of %d events (batch torn despite single-frame append)",
					k, d, info.BufferedEvents[d], len(persistDayEvents(d)))
			}
			if err := b.CloseDay(ctx, d); err != nil {
				t.Fatalf("cut at %d: close day %v: %v", k, d, err)
			}
		}
		if got := serverStateBytes(t, b); !bytes.Equal(got, ref(lastDay)) {
			t.Fatalf("cut at %d: state after re-ingesting the suffix differs from uninterrupted run", k)
		}
		shutdown(t, b)
	}
}
