package serve

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/testkit"
)

// The adversarial tamper matrix: every mutation of sealed audit history —
// WAL frames, seals, segment headers, snapshot bodies, manifests — must
// be detected by the offline verifier and localized to the artifact (and,
// for WAL bytes, the segment) it hit. The centerpiece is the CRC-fixup
// family: an adversary who flips payload bytes AND re-stamps the frame's
// CRC32 defeats every pre-audit integrity check, and the hash chain is
// exactly what still catches it.

// auditFixture builds one cleanly shut-down audited directory and returns
// its path, the public key, and the sorted shard-0 segment names.
func auditFixture(t *testing.T, shards int, days cert.Day) (string, ed25519.PublicKey) {
	t.Helper()
	dir := t.TempDir()
	s, _ := openAudit(t, dir, shards)
	feedDaysProvable(t, s, 0, days)
	pub := append(ed25519.PublicKey(nil), s.auditPub()...)
	shutdown(t, s)
	// The fixture must be verifiable before any tampering.
	if _, err := VerifyAudit(dir, pub); err != nil {
		t.Fatalf("pristine fixture does not verify: %v", err)
	}
	return dir, pub
}

// tamperCopy clones the fixture, applies one tamper, and returns the
// clone and the tampered file's base name.
func tamperCopy(t *testing.T, fixture string, tm testkit.Tamper) (string, string) {
	t.Helper()
	clone := t.TempDir()
	if err := testkit.CopyTree(fixture, clone); err != nil {
		t.Fatal(err)
	}
	path, err := tm.Apply(clone)
	if err != nil {
		t.Fatal(err)
	}
	return clone, filepath.Base(path)
}

// mustDetect asserts VerifyAudit rejects the directory with a diagnostic
// wrapping ErrAuditChainBroken that names the tampered artifact.
func mustDetect(t *testing.T, dir string, pub ed25519.PublicKey, name, context string) {
	t.Helper()
	_, err := VerifyAudit(dir, pub)
	if err == nil {
		t.Fatalf("%s: tamper of %s went undetected", context, name)
	}
	if !errors.Is(err, ErrAuditChainBroken) {
		t.Fatalf("%s: detection error does not wrap ErrAuditChainBroken: %v", context, err)
	}
	if !strings.Contains(err.Error(), name) {
		t.Fatalf("%s: diagnostic does not localize to %s: %v", context, name, err)
	}
}

// segmentNames lists the fixture's shard-0 WAL segments in order.
func segmentNames(t *testing.T, fixture string, prefix string) []string {
	t.Helper()
	walDir := filepath.Join(fixture, "wal")
	segs, err := listSegments(walDir, prefix)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(segs))
	for i, seq := range segs {
		names[i] = filepath.Base(walSegPath(walDir, prefix, seq))
	}
	return names
}

// TestAuditTamperMatrixWALExhaustive flips one bit in EVERY byte of a
// sealed (non-final) WAL segment — header magic, version, sequence, chain
// link, frame lengths, CRCs, payloads, and the seal frame — cycling the
// flipped bit position with the offset so all eight bit positions are
// exercised across the segment. Every flip must be detected and localized.
func TestAuditTamperMatrixWALExhaustive(t *testing.T) {
	fixture, pub := auditFixture(t, 1, 14)
	names := segmentNames(t, fixture, walPrefix)
	if len(names) < 3 {
		t.Fatalf("fixture produced %d segments, want ≥ 3 (shrink SegmentBytes)", len(names))
	}
	// A non-final, sealed, non-first segment that survived pruning: the
	// strict walk accounts for every byte of it, and localization is exact
	// (the first surviving segment's header link is the pruning anchor, so
	// flipping it surfaces at the NEXT segment's link check instead).
	target := names[len(names)-2]
	data, err := os.ReadFile(filepath.Join(fixture, "wal", target))
	if err != nil {
		t.Fatal(err)
	}
	clone := t.TempDir()
	if err := testkit.CopyTree(fixture, clone); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(clone, "wal", target)
	for off := int64(0); off < int64(len(data)); off++ {
		mask := byte(1) << (off % 8)
		tm := testkit.Tamper{Off: off, Mask: mask}
		if err := tm.ApplyTo(path); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyAudit(clone, pub); err == nil {
			t.Fatalf("bit flip at %s offset %d mask %02x went undetected", target, off, mask)
		} else if !errors.Is(err, ErrAuditChainBroken) {
			t.Fatalf("offset %d: error does not wrap ErrAuditChainBroken: %v", off, err)
		} else if !strings.Contains(err.Error(), target) {
			t.Fatalf("offset %d: diagnostic does not localize to %s: %v", off, target, err)
		}
		// Undo for the next iteration (XOR is its own inverse).
		if err := tm.ApplyTo(path); err != nil {
			t.Fatal(err)
		}
	}
	// The restored clone verifies again — the matrix never compounded.
	if _, err := VerifyAudit(clone, pub); err != nil {
		t.Fatalf("restored clone does not verify: %v", err)
	}
}

// TestAuditTamperMatrixStructural hits each structurally critical field
// with all eight single-bit flips: segment header magic/version/sequence/
// chain link, a mid-segment frame's length, CRC, record-type and payload
// bytes, the final segment's seal, snapshot body and signature, and the
// audit key's own fingerprint surface (flipped public key must fail
// everything).
func TestAuditTamperMatrixStructural(t *testing.T) {
	fixture, pub := auditFixture(t, 1, 14)
	names := segmentNames(t, fixture, walPrefix)
	if len(names) < 3 {
		t.Fatalf("fixture produced %d segments, want ≥ 3", len(names))
	}
	mid := names[len(names)-2]
	final := names[len(names)-1]
	finalData, err := os.ReadFile(filepath.Join(fixture, "wal", final))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		file string // base-name substring for Tamper
		off  int64
	}{
		{"header magic", mid, 0},
		{"header version", mid, 4},
		{"header sequence", mid, 8},
		{"header chain link", mid, int64(walHeaderSize) + 3},
		{"first frame length", mid, int64(walAuditHeaderSize)},
		{"first frame crc", mid, int64(walAuditHeaderSize) + 4},
		{"first frame record type", mid, int64(walAuditHeaderSize) + 8},
		{"first frame payload", mid, int64(walAuditHeaderSize) + 9},
		{"final segment seal tail", final, int64(len(finalData)) - 1},
		{"snapshot body", snapPrefix, 16},
		{"snapshot attested head", snapPrefix, 41},
		{"snapshot signature", snapPrefix, -5},
	}
	for _, tc := range cases {
		for bit := 0; bit < 8; bit++ {
			mask := byte(1) << bit
			clone, name := tamperCopy(t, fixture, testkit.Tamper{Name: tc.file, Off: tc.off, Mask: mask})
			mustDetect(t, clone, pub, name, fmt.Sprintf("%s bit %d", tc.name, bit))
		}
	}
}

// TestAuditTamperMatrixSharded covers the sharded artifacts: one shard's
// WAL bytes, each shard's snapshot, and the manifest — including every
// byte of the manifest (body, per-shard heads, signature, CRC) with one
// bit flip each.
func TestAuditTamperMatrixSharded(t *testing.T) {
	fixture, pub := auditFixture(t, 3, 12)

	// One mid-stream flip per shard stream.
	for k := 0; k < 3; k++ {
		names := segmentNames(t, fixture, walShardPrefix(k))
		target := names[0]
		clone, name := tamperCopy(t, fixture, testkit.Tamper{Name: target, Off: int64(walAuditHeaderSize) + 11, Mask: 0x40})
		mustDetect(t, clone, pub, name, fmt.Sprintf("shard %d WAL", k))

		clone, name = tamperCopy(t, fixture, testkit.Tamper{Name: snapShardPrefix(k), Off: 20, Mask: 0x02})
		mustDetect(t, clone, pub, name, fmt.Sprintf("shard %d snapshot", k))
	}

	// Every byte of the manifest.
	mans, err := listManifests(fixture)
	if err != nil || len(mans) == 0 {
		t.Fatalf("fixture has no manifest: %v", err)
	}
	manName := filepath.Base(mans[0].path)
	manData, err := os.ReadFile(mans[0].path)
	if err != nil {
		t.Fatal(err)
	}
	clone := t.TempDir()
	if err := testkit.CopyTree(fixture, clone); err != nil {
		t.Fatal(err)
	}
	clonePath := filepath.Join(clone, manName)
	for off := int64(0); off < int64(len(manData)); off++ {
		tm := testkit.Tamper{Off: off, Mask: byte(1) << (off % 8)}
		if err := tm.ApplyTo(clonePath); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyAudit(clone, pub); err == nil {
			t.Fatalf("manifest bit flip at offset %d went undetected", off)
		} else if !errors.Is(err, ErrAuditChainBroken) {
			t.Fatalf("manifest offset %d: %v", off, err)
		}
		if err := tm.ApplyTo(clonePath); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := VerifyAudit(clone, pub); err != nil {
		t.Fatalf("restored clone does not verify: %v", err)
	}
}

// fixupFrameCRC locates the frame containing `find` in segment `path`,
// replaces it with `repl` (same length), and re-stamps the frame's CRC32
// so every pre-audit integrity check accepts the mutated log.
// It returns the frame's offset within the segment.
func fixupFrameCRC(t *testing.T, path string, find, repl string) int64 {
	t.Helper()
	if len(find) != len(repl) {
		t.Fatal("find/repl must be the same length")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, frames, _, ok := parseSegment(data)
	if !ok {
		t.Fatalf("%s: not a parseable segment", filepath.Base(path))
	}
	for _, fr := range frames {
		i := strings.Index(string(fr.payload), find)
		if i < 0 {
			continue
		}
		copy(fr.payload[i:], repl) // fr.payload aliases data
		binary.LittleEndian.PutUint32(data[fr.off+4:fr.off+8], crc32.ChecksumIEEE(fr.payload))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return int64(fr.off)
	}
	t.Fatalf("%s: no frame contains %q", filepath.Base(path), find)
	return 0
}

// TestAuditTamperCRCFixup is the case CRC32 alone cannot catch: an
// adversary rewrites an event inside a sealed frame and re-stamps the
// frame's CRC. The framing layer accepts the segment bit for bit — and
// both the offline verifier and recovery still refuse it, because the
// hash chain committed to the original bytes.
func TestAuditTamperCRCFixup(t *testing.T) {
	fixture, pub := auditFixture(t, 1, 14)
	names := segmentNames(t, fixture, walPrefix)
	target := names[len(names)-2]

	clone := t.TempDir()
	if err := testkit.CopyTree(fixture, clone); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(clone, "wal", target)
	// Rewrite one event's device host: same length, valid JSON, valid
	// event — indistinguishable from honest history to everything but the
	// chain.
	off := fixupFrameCRC(t, path, `PC-`, `PD-`)

	// 1. The framing layer itself accepts the tampered segment: every
	// frame parses, CRCs included, and the record decodes. This is the
	// pre-audit trust boundary, and it holds the forged history.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, frames, goodLen, ok := parseSegment(data)
	if !ok || goodLen != len(data) {
		t.Fatalf("tampered segment no longer parses cleanly (goodLen %d of %d) — fixup broke framing", goodLen, len(data))
	}
	for _, fr := range frames {
		if _, err := decodeRecord(fr.payload); err != nil {
			t.Fatalf("tampered frame no longer decodes: %v — fixup broke the record", err)
		}
	}

	// 2. The offline verifier catches it and points at the frame.
	_, verr := VerifyAudit(clone, pub)
	if verr == nil {
		t.Fatal("CRC-fixup tamper went undetected by VerifyAudit")
	}
	if !errors.Is(verr, ErrAuditChainBroken) || !strings.Contains(verr.Error(), target) {
		t.Fatalf("detection not localized to %s: %v", target, verr)
	}
	// Localization: the diagnostic pins a byte offset within the segment
	// (the divergent seal, or an attested head boundary at/after the
	// tampered frame at offset `off`).
	if !strings.Contains(verr.Error(), "offset") {
		t.Fatalf("diagnostic pins no offset (tampered frame at %d): %v", off, verr)
	}

	// 3. Recovery refuses to serve the forged history: Open fail-stops
	// with ErrAuditChainBroken instead of replaying it.
	cfg := persistCfg()
	p := auditPersist()
	p.Dir = clone
	if _, _, err := Open(cfg, p); !errors.Is(err, ErrAuditChainBroken) {
		t.Fatalf("recovery over CRC-fixed-up history: %v, want ErrAuditChainBroken", err)
	}
}

// TestAuditTamperSnapshotVsManifestSplice swaps attested state between
// generations: a snapshot signature from one day pasted over another
// day's snapshot must fail (the signature covers the body), and a
// manifest whose CRC is re-stamped after a head edit must still fail on
// its ed25519 signature — the CRC protects against corruption, the
// signature against re-checksummed tampering.
func TestAuditTamperSnapshotVsManifestSplice(t *testing.T) {
	fixture, pub := auditFixture(t, 3, 12)
	mans, err := listManifests(fixture)
	if err != nil || len(mans) == 0 {
		t.Fatal("fixture has no manifest")
	}
	manName := filepath.Base(mans[0].path)
	manData, err := os.ReadFile(mans[0].path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one bit inside a pinned per-shard head, then re-stamp the CRC:
	// decodeManifest's checksum passes, the signature does not.
	clone := t.TempDir()
	if err := testkit.CopyTree(fixture, clone); err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), manData...)
	// Heads live between the fixed prefix and the trailer; flip a byte
	// comfortably inside the first head's bytes.
	headOff := int64(4 + 4 + 8 + 8 + 8 + 8 + 4) // magic,ver,shards,day,hwm,len-prefix,into head
	forged[headOff] ^= 0x10
	body := forged[:len(forged)-4]
	binary.LittleEndian.PutUint32(forged[len(forged)-4:], crc32.ChecksumIEEE(body))
	if err := os.WriteFile(filepath.Join(clone, manName), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if m, err := decodeManifest(forged); err != nil {
		t.Fatalf("re-stamped manifest should pass the CRC layer, got: %v", err)
	} else if m.verifySig(pub) {
		t.Fatal("forged manifest passed signature verification")
	}
	mustDetect(t, clone, pub, manName, "re-checksummed manifest head")

	// Splice: shard 0's snapshot copied over shard 1's. Each file is
	// individually signed and internally consistent — only the manifest
	// cross-check (and the chain walk) can notice the swap.
	snaps0, err := listSnapshots(fixture, snapShardPrefix(0))
	if err != nil || len(snaps0) == 0 {
		t.Fatal("no shard-0 snapshot")
	}
	snaps1, err := listSnapshots(fixture, snapShardPrefix(1))
	if err != nil || len(snaps1) == 0 {
		t.Fatal("no shard-1 snapshot")
	}
	clone2 := t.TempDir()
	if err := testkit.CopyTree(fixture, clone2); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(snaps0[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(clone2, filepath.Base(snaps1[0].path)), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAudit(clone2, pub); !errors.Is(err, ErrAuditChainBroken) {
		t.Fatalf("spliced snapshot went undetected: %v", err)
	}
}

// TestAuditTamperShardedPreManifest pins the layout autodetection on a
// sharded directory that was shut down before its first snapshot round:
// with no manifest to pin the shard count, VerifyAudit must still find
// the per-shard WAL streams from their filenames — an early bug made it
// fall back to the unsharded name pattern and "verify" an empty set,
// passing tampered directories. A flipped byte must be detected, and a
// smuggled segment file no stream claims must refuse verification too.
func TestAuditTamperShardedPreManifest(t *testing.T) {
	dir := t.TempDir()
	cfg := persistCfg()
	cfg.Shards = 3
	p := auditPersist()
	p.Dir = dir
	p.SnapshotEvery = 1 << 20 // never: the directory stays manifest-less
	s, _, err := Open(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	feedDaysProvable(t, s, 0, 5)
	pub := append(ed25519.PublicKey(nil), s.auditPub()...)
	shutdown(t, s)
	if mans, err := listManifests(dir); err != nil || len(mans) != 0 {
		t.Fatalf("fixture grew a manifest (%d, %v); the pre-manifest case is vacuous", len(mans), err)
	}

	rep, err := VerifyAudit(dir, pub)
	if err != nil {
		t.Fatalf("pristine pre-manifest sharded dir does not verify: %v", err)
	}
	if rep.Shards != 3 || rep.Segments == 0 || rep.Batches == 0 {
		t.Fatalf("walk covered too little: %+v", rep)
	}

	names := segmentNames(t, dir, walShardPrefix(1))
	clone, target := tamperCopy(t, dir, testkit.Tamper{
		Name: names[0], Off: int64(walAuditHeaderSize + 9), Mask: 0x10,
	})
	mustDetect(t, clone, pub, target, "pre-manifest shard-1 WAL flip")

	// A segment under a shard index no stream owns must not be skipped.
	clone2 := t.TempDir()
	if err := testkit.CopyTree(dir, clone2); err != nil {
		t.Fatal(err)
	}
	smuggled := filepath.Join(clone2, "wal", "wal-shard7-00000001.log")
	if err := os.WriteFile(smuggled, []byte("not history"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAudit(clone2, pub); !errors.Is(err, ErrAuditChainBroken) ||
		err == nil || !strings.Contains(err.Error(), "wal-shard7-00000001.log") {
		t.Fatalf("smuggled segment went undetected: %v", err)
	}
}
