package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"acobe/internal/audit"
	"acobe/internal/cert"
	"acobe/internal/persist"
)

// Snapshots bound recovery cost: a snapshot captures one shard's complete
// ingest state at a day-close barrier (measurement table, extractor
// first-seen trackers, streaming deviation windows, buffered open-day
// events, counters) plus the WAL position it corresponds to, so a restart
// loads the newest valid snapshot and replays only the WAL tail behind it.
// An unsharded server writes snapshot-<day>.snap — byte-identical to the
// historical single-file format. A sharded server writes one
// snapshot-shard<k>-<day>.snap per shard plus a manifest (see manifest.go)
// pinning the cut; shard 0's snapshot additionally carries the global
// group state. Snapshots are published atomically (tmp + fsync + rename):
// a crash mid-write leaves only a .tmp the reader ignores. The newest two
// generations are kept so a corrupt latest snapshot falls back one
// generation, and WAL segments are pruned only below the oldest retained
// snapshot's position.

const (
	snapMagic   = "ACSN"
	snapTrailer = "ACSE"
	snapVersion = 1
	// snapAuditVersion marks an audit-attesting snapshot: the header
	// additionally carries the WAL chain head at the snapshot's position
	// (so the snapshot attests to the exact log prefix it summarizes),
	// and the file ends with an ed25519 signature over the SHA-256 of
	// everything before it (body + CRC). Audit off keeps writing
	// version 1 byte-identically.
	snapAuditVersion = 2
	snapRetain       = 2
	snapSuffix       = ".snap"
	snapTempSuffix   = ".snap.tmp"

	// snapPrefix is the unsharded (legacy, Shards=1) snapshot-name prefix.
	snapPrefix = "snapshot-"
)

// snapShardPrefix names shard k's snapshot series.
func snapShardPrefix(k int) string { return fmt.Sprintf("snapshot-shard%d-", k) }

func snapPath(dir, prefix string, day cert.Day) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", prefix, int64(day), snapSuffix))
}

// crcWriter checksums everything written through it. The snapshot body is
// followed by its CRC32 so silent corruption (a flipped bit in float
// data would otherwise decode fine) is detected at load time.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// crcReader checksums everything read through it.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// digestWriter SHA-256-hashes everything written through it (the
// message an audit-mode snapshot's trailing signature covers).
type digestWriter struct {
	w io.Writer
	h hash.Hash
}

func (d *digestWriter) Write(p []byte) (int, error) {
	n, err := d.w.Write(p)
	d.h.Write(p[:n])
	return n, err
}

// digestReader SHA-256-hashes everything read through it.
type digestReader struct {
	r io.Reader
	h hash.Hash
}

func (d *digestReader) Read(p []byte) (int, error) {
	n, err := d.r.Read(p)
	d.h.Write(p[:n])
	return n, err
}

// snapEntry is one snapshot (or manifest) file found on disk.
type snapEntry struct {
	day  cert.Day
	path string
}

// listNumbered returns dir's prefix<number>suffix files, parsed; files
// whose middle part is not purely numeric (e.g. a shard-prefixed name
// against the unsharded prefix, or vice versa) are skipped.
func listNumbered(dir, prefix, suffix, skipSuffix string) ([]snapEntry, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []snapEntry
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) ||
			(skipSuffix != "" && strings.HasSuffix(name, skipSuffix)) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		d, err := strconv.ParseInt(num, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, snapEntry{day: cert.Day(d), path: filepath.Join(dir, name)})
	}
	return out, nil
}

// listSnapshots returns the published snapshots with the given name
// prefix, newest first.
func listSnapshots(dir, prefix string) ([]snapEntry, error) {
	out, err := listNumbered(dir, prefix, snapSuffix, snapTempSuffix)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].day > out[j].day })
	return out, nil
}

// listSegments returns the WAL segment sequence numbers present in dir
// under the given name prefix, ascending.
func listSegments(dir, prefix string) ([]uint64, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".log"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// encodeSnapshot writes one shard's state (the full server state when
// Shards=1). Runs on the shard's goroutine (the only writer of its ingest
// state), so no locks are needed: rank queries and retrain cloning only
// read the merged view. withGroups says whether this snapshot carries the
// global group state — true for shard 0 of a grouped server.
func (s *Server) encodeSnapshot(w io.Writer, sh *shard, withGroups bool, day cert.Day, pos walPos, head audit.Head) error {
	var ing StatefulIngestor
	if sh.ing != nil {
		var ok bool
		ing, ok = sh.ing.(StatefulIngestor)
		if !ok {
			return fmt.Errorf("serve: ingestor %T cannot snapshot (no SaveState)", sh.ing)
		}
	}
	ver := s.snapVer()
	pw := persist.NewWriter(w)
	pw.Magic(snapMagic, ver)
	pw.I64(int64(day))
	pw.U64(pos.seg)
	pw.I64(pos.off)
	if ver == snapAuditVersion {
		// The chain head at pos: this snapshot attests the exact WAL
		// prefix it summarizes, anchoring proofs past future pruning.
		pw.Bytes(head[:])
	}
	pw.I64(sh.ingested.Load())
	pw.I64(sh.late.Load())
	pw.Strings(sh.users)
	pw.Strings(s.cfg.Groups)
	pw.I64(int64(s.cfg.Start))
	pw.Int(s.cfg.Deviation.Window)
	if err := pw.Err(); err != nil {
		return err
	}
	if ing != nil {
		if err := ing.SaveState(w); err != nil {
			return err
		}
		if err := sh.ind.SaveState(w); err != nil {
			return err
		}
	}
	pw.Bool(withGroups)
	if withGroups {
		if err := pw.Err(); err != nil {
			return err
		}
		if err := s.groupTable().SaveState(w); err != nil {
			return err
		}
		if err := s.groupStream().SaveState(w); err != nil {
			return err
		}
	}
	days := make([]cert.Day, 0, len(sh.buffered))
	for d := range sh.buffered {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	pw.U64(uint64(len(days)))
	for _, d := range days {
		pw.I64(int64(d))
		body, err := json.Marshal(sh.buffered[d])
		if err != nil {
			return fmt.Errorf("serve: encode buffered events: %w", err)
		}
		pw.Bytes(body)
	}
	pw.Magic(snapTrailer, ver)
	return pw.Err()
}

// snapVer returns the snapshot format version this server writes (and
// the only one it accepts — an audit-mode mismatch must be loud, never a
// silent reinterpretation).
func (s *Server) snapVer() uint32 {
	if s.auditOn() {
		return snapAuditVersion
	}
	return snapVersion
}

// loadSnapshot restores a snapshot file into a freshly constructed
// shard (and, with withGroups, the server's group state). Any decoding or
// validation failure leaves the caller free to fall back to an older
// snapshot (the state is only mutated after the header validates, and the
// caller rebuilds the core per attempt).
func (s *Server) loadSnapshot(path string, sh *shard, withGroups bool) (day cert.Day, pos walPos, head audit.Head, err error) {
	var ing StatefulIngestor
	if sh.ing != nil {
		var ok bool
		ing, ok = sh.ing.(StatefulIngestor)
		if !ok {
			return 0, walPos{}, head, fmt.Errorf("serve: ingestor %T cannot restore (no LoadState)", sh.ing)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, walPos{}, head, err
	}
	defer f.Close()
	ver := s.snapVer()
	// In audit mode every byte before the trailing signature (body and
	// CRC alike) feeds a SHA-256 the signature is checked against.
	var src io.Reader = f
	var dg *digestReader
	if ver == snapAuditVersion {
		dg = &digestReader{r: f, h: sha256.New()}
		src = dg
	}
	cr := &crcReader{r: src}
	pr := persist.NewReader(cr)
	if v := pr.Magic(snapMagic); pr.Err() == nil && v != ver {
		return 0, walPos{}, head, fmt.Errorf("serve: snapshot version %d, want %d (audit mode mismatch?)", v, ver)
	}
	day = cert.Day(pr.I64())
	pos.seg = pr.U64()
	pos.off = pr.I64()
	if ver == snapAuditVersion {
		hb := pr.Bytes()
		if pr.Err() == nil && len(hb) != audit.HeadSize {
			return 0, walPos{}, head, fmt.Errorf("serve: snapshot chain head is %d bytes, want %d", len(hb), audit.HeadSize)
		}
		copy(head[:], hb)
	}
	ingested := pr.I64()
	late := pr.I64()
	users := pr.Strings()
	groups := pr.Strings()
	start := cert.Day(pr.I64())
	window := pr.Int()
	if err := pr.Err(); err != nil {
		return 0, walPos{}, head, err
	}
	if !equalStrings(users, sh.users) || !equalStrings(groups, s.cfg.Groups) {
		return 0, walPos{}, head, fmt.Errorf("serve: snapshot users/groups do not match configuration")
	}
	if start != s.cfg.Start || window != s.cfg.Deviation.Window {
		return 0, walPos{}, head, fmt.Errorf("serve: snapshot shape (start %v, window %d) does not match configuration (%v, %d)",
			start, window, s.cfg.Start, s.cfg.Deviation.Window)
	}
	if ing != nil {
		if err := ing.LoadState(cr); err != nil {
			return 0, walPos{}, head, err
		}
		if err := sh.ind.LoadState(cr); err != nil {
			return 0, walPos{}, head, err
		}
	}
	hasGroups := pr.Bool()
	if pr.Err() == nil && hasGroups != withGroups {
		return 0, walPos{}, head, fmt.Errorf("serve: snapshot group presence does not match configuration")
	}
	if err := pr.Err(); err != nil {
		return 0, walPos{}, head, err
	}
	if hasGroups {
		if err := s.groupTable().LoadState(cr); err != nil {
			return 0, walPos{}, head, err
		}
		if err := s.groupStream().LoadState(cr); err != nil {
			return 0, walPos{}, head, err
		}
	}
	ndays := pr.Len()
	for i := 0; i < ndays && pr.Err() == nil; i++ {
		d := cert.Day(pr.I64())
		body := pr.Bytes()
		if pr.Err() != nil {
			break
		}
		var evs []Event
		if err := json.Unmarshal(body, &evs); err != nil {
			return 0, walPos{}, head, fmt.Errorf("serve: snapshot buffered events: %w", err)
		}
		sh.buffered[d] = evs
	}
	if v := pr.Magic(snapTrailer); pr.Err() == nil && v != ver {
		return 0, walPos{}, head, fmt.Errorf("serve: snapshot trailer version %d unsupported", v)
	}
	if err := pr.Err(); err != nil {
		return 0, walPos{}, head, err
	}
	// The stored CRC covers everything up to and including the trailer. It
	// is read from src — past the CRC accumulator, but (in audit mode)
	// through the digest, because the signature covers body AND CRC.
	want := cr.crc
	var stored [4]byte
	if _, err := io.ReadFull(src, stored[:]); err != nil {
		return 0, walPos{}, head, fmt.Errorf("serve: snapshot checksum missing: %w", err)
	}
	if got := binary.LittleEndian.Uint32(stored[:]); got != want {
		return 0, walPos{}, head, fmt.Errorf("serve: snapshot checksum mismatch (stored %08x, computed %08x)", got, want)
	}
	if ver == snapAuditVersion {
		var sig [audit.SigSize]byte
		if _, err := io.ReadFull(f, sig[:]); err != nil {
			return 0, walPos{}, head, fmt.Errorf("serve: snapshot signature missing: %w", err)
		}
		var d [sha256.Size]byte
		dg.h.Sum(d[:0])
		if !audit.VerifyContext(s.auditPub(), sig, audit.ContextSnapshot, d[:]) {
			return 0, walPos{}, head, fmt.Errorf("serve: snapshot signature invalid (key %s)", audit.Fingerprint(s.auditPub()))
		}
		if n, _ := f.Read(stored[:1]); n != 0 {
			return 0, walPos{}, head, fmt.Errorf("serve: snapshot has trailing bytes after signature")
		}
	}
	sh.closedThrough = day
	sh.ingested.Store(ingested)
	sh.late.Store(late)
	return day, pos, head, nil
}

// readSnapshotPos reads only a snapshot's header, for pruning decisions.
func readSnapshotPos(path string) (day cert.Day, pos walPos, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, walPos{}, err
	}
	defer f.Close()
	pr := persist.NewReader(f)
	pr.Magic(snapMagic)
	day = cert.Day(pr.I64())
	pos.seg = pr.U64()
	pos.off = pr.I64()
	return day, pos, pr.Err()
}

// publishSnapshot writes one snapshot file atomically: tmp + CRC (+
// signature, in audit mode) + fsync + rename + directory fsync.
func (s *Server) publishSnapshot(final string, sh *shard, withGroups bool, day cert.Day, pos walPos, head audit.Head) error {
	tmp := final + ".tmp"
	f, err := s.fs.create(tmp)
	if err != nil {
		return err
	}
	var out io.Writer = f
	var dg *digestWriter
	if s.auditOn() {
		dg = &digestWriter{w: f, h: sha256.New()}
		out = dg
	}
	cw := &crcWriter{w: out}
	err = s.encodeSnapshot(cw, sh, withGroups, day, pos, head)
	if err == nil {
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], cw.crc)
		_, err = out.Write(sum[:])
	}
	if err == nil && dg != nil {
		var d [sha256.Size]byte
		dg.h.Sum(d[:0])
		sig := audit.SignContext(s.auditPriv, audit.ContextSnapshot, d[:])
		_, err = f.Write(sig[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) // best effort; recovery ignores .tmp files anyway
		return err
	}
	if err := s.fs.rename(tmp, final); err != nil {
		return err
	}
	// The rename must be durable before pruning anything the new snapshot
	// obsoletes: without the directory fsync a power loss could keep the
	// prunes while dropping the publish, leaving a pruned WAL with no (or
	// only an older, position-dangling) snapshot.
	return s.fs.syncDir(s.pcfg.Dir)
}

// writeSnapshot publishes an unsharded (Shards=1) snapshot of the current
// state and prunes what it obsoletes. The WAL is synced first so the
// recorded position is durable before anything behind it may be removed.
func (s *Server) writeSnapshot() error {
	sh := s.shards[0]
	if err := sh.wal.sync(); err != nil {
		return err
	}
	pos := sh.wal.pos()
	head := sh.wal.head()
	day := s.closedThrough
	if err := s.publishSnapshot(snapPath(s.pcfg.Dir, snapPrefix, day), sh, s.grp != nil, day, pos, head); err != nil {
		return err
	}
	return s.pruneAfterSnapshot(day, pos)
}

// shardSnapshot publishes one shard's snapshot at the current barrier. It
// runs on the shard's goroutine (isSnap envelope), so the shard state is
// quiescent; the coordinator writes the manifest only after every shard
// acked.
func (s *Server) shardSnapshot(sh *shard) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	if err := sh.wal.sync(); err != nil {
		return s.failPersist(err)
	}
	pos := sh.wal.pos()
	head := sh.wal.head()
	sh.snapHead = head
	day := sh.closedThrough
	withGroups := sh.idx == 0 && s.hasGroups
	if err := s.publishSnapshot(snapPath(s.pcfg.Dir, snapShardPrefix(sh.idx), day), sh, withGroups, day, pos, head); err != nil {
		return s.failPersist(err)
	}
	return nil
}

// maybeSnapshotSharded runs a coordinated snapshot round once enough days
// closed since the last one: every shard publishes its own snapshot at
// the barrier, and only then the manifest pins the cut — a crash anywhere
// in between leaves the previous manifest (and its snapshots, still
// retained) authoritative.
func (s *Server) maybeSnapshotSharded() error {
	if s.daysSinceSnap < s.pcfg.SnapshotEvery {
		return nil
	}
	start := s.obs.Clock()
	// Quiesce cross-shard Submit fan-out for the round: snapMu held
	// exclusively from the broadcast until every shard acked means each
	// batch's parts are enqueued either entirely before every shard's
	// isSnap envelope or entirely after it, so the recorded WAL positions
	// agree about which batches the snapshots bake in. Without this a
	// batch could straddle the cut and recovery would drop the tail-side
	// half of an acknowledged batch (see snapMu in server.go).
	s.snapMu.Lock()
	acks := make([]chan error, len(s.shards))
	for i, sh := range s.shards {
		acks[i] = make(chan error, 1)
		sh.queue <- envelope{isSnap: true, done: acks[i]}
	}
	var firstErr error
	for _, ack := range acks {
		if err := <-ack; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.snapMu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	day := s.closedThrough
	if err := s.writeManifest(day); err != nil {
		return err
	}
	if err := s.pruneSharded(); err != nil {
		return err
	}
	s.daysSinceSnap = 0
	s.obs.ObserveSnapshot(start, int64(day))
	return nil
}

// pruneAfterSnapshot removes snapshots beyond the retention count and WAL
// segments no retained snapshot needs (unsharded layout). This runs after
// the new snapshot is published — the crash window between publish and
// prune only leaves extra files behind, never a recovery gap.
func (s *Server) pruneAfterSnapshot(day cert.Day, pos walPos) error {
	snaps, err := listSnapshots(s.pcfg.Dir, snapPrefix)
	if err != nil {
		return err
	}
	minSeg := pos.seg
	for i, e := range snaps {
		if i >= snapRetain {
			if err := s.fs.remove(e.path); err != nil {
				return err
			}
			continue
		}
		if e.day == day {
			continue
		}
		_, p, err := readSnapshotPos(e.path)
		if err != nil {
			// Unreadable retained snapshot: its WAL needs are unknown, so
			// keep every segment this round. Recovery may still fall back
			// to it (or past it to the full log) and must find its tail.
			minSeg = 0
			continue
		}
		if p.seg < minSeg {
			minSeg = p.seg
		}
	}
	walDir := filepath.Join(s.pcfg.Dir, "wal")
	segs, err := listSegments(walDir, walPrefix)
	if err != nil {
		return err
	}
	for _, seq := range segs {
		if seq < minSeg {
			if err := s.fs.remove(walSegPath(walDir, walPrefix, seq)); err != nil {
				return err
			}
		}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
