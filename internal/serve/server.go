// Package serve is the online half of the repository: a long-running
// scoring service that ingests audit-log events continuously, advances the
// per-user deviation state one closed day at a time in O(1) per cell
// (deviation.StreamField over running sums), and answers ranked
// investigation-list queries from a trained ensemble through pkg/acobe.
//
// The data path is built for byte-identical parity with the offline batch
// pipeline: the same extractors fill the measurement tables, the group
// table repeats GroupTable's member-sum order, the streaming window
// advance performs the batch field's floating-point operations in the
// batch order, and training/scoring run through the same facade. Feeding
// the daemon a dataset day by day therefore yields exactly the ranked
// list the batch pipeline prints for that dataset (asserted against the
// committed golden snapshots).
//
// Concurrency model:
//
//   - Per-user state is partitioned across Config.Shards consistent-hashed
//     shards. Each shard owns a goroutine, a bounded ingest queue, its own
//     extractor + streaming deviation state, and (with persistence) its
//     own WAL segment stream — so ingest parallelizes across shards.
//   - With Shards=1 (the default) the single shard's goroutine is the
//     classic drain loop: it owns the day buffers and day-close end to
//     end, and on-disk artifacts are byte-identical to the historical
//     unsharded format.
//   - With Shards>1 a coordinator goroutine serializes day-closes: it
//     broadcasts a close barrier to every shard, waits for all of them to
//     extract their users' days, then merges the per-shard deviations
//     into one global view field and group table in deterministic global
//     user order. The merge copies float64 values bit-for-bit and sums
//     group members in ascending global user index — the batch pipeline's
//     exact operation order — so rankings are byte-identical regardless
//     of the shard count.
//   - The merged view is double-buffered (Shards>1): the coordinator
//     builds freshly closed days into a private shadow generation with no
//     lock held — rank queries keep scoring the published generation —
//     and publishes the shadow with a pointer swap. The write lock is
//     held only for the swap (plus a detector rebind), so a day close
//     never stalls ranking behind O(days × users) merge work. The
//     demoted generation becomes the next shadow and is caught up by
//     bit-copy from the published one before new days are built.
//   - With Shards=1 day-close mutates the single live field under the
//     writer lock (the historical path); rank queries score under a
//     reader lock either way, so queries never observe a half-advanced
//     day or a half-published generation.
//   - Retraining never reads the merged view when sharded: the
//     coordinator stitches a training measurement table straight from
//     the quiescent shard tables (rows in global user order), and the
//     batch pipeline derives the training fields from it — bit-identical
//     to the view by the streamed-equals-batch invariants. Unsharded
//     retrains clone the live fields under a reader lock as before.
//     Models fit in parallel (core.Detector.Fit's ensemble concurrency)
//     on the frozen snapshot without any lock; the trained weights are
//     swapped in atomically (old detector answers until the instant of
//     the swap).
package serve

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"acobe/internal/audit"
	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/features"
	"acobe/internal/nn"
	"acobe/internal/obs"
	"acobe/pkg/acobe"
)

// Typed failures surfaced to API clients.
var (
	// ErrNoModel is returned by Rank before the first successful retrain.
	ErrNoModel = errors.New("serve: no trained model yet")
	// ErrRetrainInProgress is returned when a retrain is already running.
	ErrRetrainInProgress = errors.New("serve: retrain already in progress")
	// ErrShuttingDown is returned by Submit/CloseDay after Shutdown began.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrBatchTooLarge is returned by Submit when one batch's WAL encoding
	// exceeds the frame cap. The batch is rejected whole; the server keeps
	// running — an input-size problem is the client's to split, not a
	// persistence failure.
	ErrBatchTooLarge = errors.New("serve: batch too large for one WAL frame")
)

// Config wires a Server.
type Config struct {
	// Users lists every scored user ID, in index order.
	Users []string
	// Groups and Membership declare the peer groups (Membership[u] indexes
	// Groups; -1 excludes the user). Leave Groups empty to serve without
	// group deviations (the No-Group variant).
	Groups     []string
	Membership []int
	// Start is the first measured day.
	Start cert.Day
	// Deviation carries ω, 𝒟, Δ, ε and weighting.
	Deviation deviation.Config
	// Ingestor fills the measurement table from closed days' events.
	// Defaults to a CERTIngestor over Users starting at Start. Only valid
	// with Shards ≤ 1: a prebuilt ingestor spans all users and cannot be
	// partitioned — sharded servers build per-shard ingestors through
	// IngestorFactory.
	Ingestor Ingestor
	// IngestorFactory builds one ingestor per shard over that shard's
	// user subset. Defaults to NewCERTIngestor. Mutually exclusive with
	// Ingestor.
	IngestorFactory func(users []string, start cert.Day) (Ingestor, error)
	// DetectorOptions configure the ensemble built at each retrain
	// (aspects, model size, seed, votes, train stride, ...). Group
	// deviation inclusion is derived from Groups and must not be set here.
	DetectorOptions []acobe.Option
	// QueueSize bounds each ingest queue in batches (default 64). When a
	// queue is full, Submit blocks — backpressure, not buffering.
	QueueSize int
	// Shards partitions the per-user state (default 1). Users are placed
	// on a consistent-hash ring keyed by user ID, so placement depends
	// only on (user ID, shard count). Rankings are byte-identical across
	// any shard count; Shards=1 additionally keeps the on-disk WAL and
	// snapshot artifacts byte-identical to the historical unsharded
	// layout.
	Shards int
	// Observer, when non-nil, turns on per-stage instrumentation: latency
	// histograms and counters recorded allocation-free on the hot path,
	// exposed through Server.MetricsSnapshot, GET /metrics, and the
	// status report. Leave nil to serve without recording (the hooks
	// reduce to one branch each). One Observer serves one Server.
	Observer *obs.Observer
}

// envelope is one unit of shard/coordinator work: an event batch, a
// close-through-day barrier (isClose), a snapshot request (isSnap —
// sharded servers only), or a training-snapshot request (isTrainSnap —
// coordinator front queue only, so it serializes against closes and the
// shard tables are quiescent while it runs). done, when non-nil,
// receives the outcome — always set for closes, snapshots, and training
// snapshots, and set for event batches when persistence is on (Submit
// acks only after the batch hit the WAL).
type envelope struct {
	events       []Event
	batchID      uint64 // cross-shard batch identity (Shards>1 with WAL)
	parts        uint32 // how many shard logs carry a slice of the batch
	closeThrough cert.Day
	isClose      bool
	isSnap       bool
	isTrainSnap  bool
	isReceipt    bool
	train        *trainSnapReq
	rcpt         *audit.Receipt // isReceipt: filled/signed on the shard goroutine
	done         chan error
}

// trainSnapReq carries a shard-local training snapshot request through
// the coordinator: the coordinator fills tbl with every shard's closed
// measurements stitched in global user order and day with the last day
// every shard has closed.
type trainSnapReq struct {
	tbl *features.Table
	day cert.Day
}

// shard owns one consistent-hash partition of the per-user state. Its
// fields other than the queue and counters are owned by the shard's drain
// goroutine (and by recovery, which runs before it starts).
type shard struct {
	idx int
	// users is the shard's user subset in global index order; global maps
	// a local index back to the configured global index.
	users  []string
	global []int

	ing Ingestor               // nil when the shard holds no users
	ind *deviation.StreamField // nil when ing is nil

	// closedThrough is the shard's own applied close barrier. It equals
	// the server's closedThrough except transiently inside a close.
	closedThrough cert.Day

	// snapHead is the chain head this shard's latest snapshot attested
	// (audit mode). Written on the shard goroutine inside the snapshot
	// envelope; the coordinator reads it for the manifest only after the
	// shard acked, so the ack channel orders the accesses.
	snapHead audit.Head

	// buffered holds events of not-yet-closed days routed to this shard.
	buffered map[cert.Day][]Event

	queue chan envelope

	ingested atomic.Int64
	late     atomic.Int64

	wal *wal // nil without persistence

	// stats is the shard's private recording cell (nil without an
	// Observer): apply/fsync latency, WAL traffic, queue high-water mark.
	stats *obs.ShardStats
}

// sigma reads the shard's deviation of local user lu on day d.
func (sh *shard) sigma(lu, feat, frame int, d cert.Day) float64 {
	return sh.ind.Field().Sigma(lu, feat, frame, d)
}

// viewGen is one generation of the merged global state (Shards>1 only):
// the per-user deviation view, the group measurement table and its
// streaming deviation state (nil without groups), and the last day
// folded into them. Two generations double-buffer the merge: rank
// queries read the published one while the coordinator builds freshly
// closed days into the shadow, and publishing is a pointer swap.
type viewGen struct {
	view          *deviation.Field
	grpTbl        *features.Table
	grp           *deviation.StreamField
	closedThrough cert.Day
}

// Server is the online scoring daemon's engine, independent of its HTTP
// shell (cmd/acobed).
type Server struct {
	cfg    Config
	router *router
	shards []*shard
	// userShard and userLocal map a global user index to its owning shard
	// and its index inside that shard.
	userShard []int
	userLocal []int
	// checker is any shard's ingestor, used for payload-type vetting
	// (every shard runs the same ingestor type).
	checker Ingestor
	feats   []string
	frames  int

	// gen is the published merged-view generation (Shards>1 only): day by
	// day, closed per-shard deviations are copied into a generation at
	// their global user rows, bit-for-bit. The coordinator builds new
	// days into shadow with no lock held, then publishes it with a
	// pointer swap under the write lock; the demoted generation becomes
	// the next shadow. shadow is owned by the coordinator goroutine (and
	// by recovery, which runs before it starts). With Shards=1 the single
	// shard's live field is the view and gen stays nil. Rank and Retrain
	// always read through indField()/groupStream().
	gen    atomic.Pointer[viewGen]
	shadow *viewGen

	// hasGroups records whether peer groups are configured; the live
	// group state lives in grpTbl/grp (Shards=1) or in each generation
	// (Shards>1).
	hasGroups bool
	grpTbl    *features.Table        // Shards=1 only
	grp       *deviation.StreamField // Shards=1 with groups only
	invSize   []float64              // 1/|group|, GroupTable's exact factor

	// mu orders day-close writes against rank-query reads of the live
	// tables and fields. closedThrough is published under it.
	mu            sync.RWMutex
	closedThrough cert.Day

	qmu    sync.RWMutex  // guards queue sends against close(queue)
	queue  chan envelope // coordinator close queue (Shards>1 only)
	closed bool          // under qmu

	// snapMu serializes cross-shard Submit fan-out against sharded
	// snapshot rounds. A snapshot cut is consistent only if every batch
	// sits wholly behind or wholly ahead of it: were the isSnap broadcast
	// to interleave with a fan-out, one shard could bake its part into its
	// snapshot (frame behind the recorded WAL position) while a sibling
	// logs its part past its own — recovery's completeness check would
	// then see a lone tail part, count the batch as partial, and drop half
	// of an acknowledged batch. The fan-out holds the read side across the
	// enqueue loop; the coordinator holds the write side from the isSnap
	// broadcast until every shard acked, so a batch's parts sit either all
	// before or all after the snap envelope in every shard's FIFO queue.
	snapMu sync.RWMutex

	// nextBatch numbers cross-shard batches; recovery advances it past
	// both the manifest's persisted high-water mark and every batch ID
	// seen in the WAL tails, so IDs never collide across restarts (stale
	// and fresh frames with one ID would poison a recovery that falls
	// back a manifest generation and scans frames from both boots).
	nextBatch atomic.Uint64

	det          atomic.Pointer[acobe.Detector]
	retraining   atomic.Bool
	lastTrainErr atomic.Value // error from the most recent retrain, or nil

	// Persistence (nil pcfg = disabled). Each shard's WAL appender is
	// owned by that shard's goroutine; snapshot cadence is owned by the
	// closing goroutine (the single drain loop, or the coordinator).
	// persistFail is the fail-stop latch: set once, read by every later
	// Submit/CloseDay.
	pcfg          *PersistConfig
	fs            persistFS
	failMu        sync.Mutex
	persistFail   atomic.Value // errBox
	daysSinceSnap int
	recovery      *RecoverInfo

	// Audit layer (PersistConfig.Audit only). auditPriv is the data
	// directory's ed25519 signing key; auditIdx is the in-memory proof
	// index (batch ID → logged parts), written by shard goroutines as
	// parts land and rebuilt from the WAL tail at recovery.
	auditPriv ed25519.PrivateKey
	auditMu   sync.RWMutex
	auditIdx  map[uint64][]partAudit

	// obs mirrors cfg.Observer (nil = instrumentation off); startTime
	// feeds the status report's uptime.
	obs       *obs.Observer
	startTime time.Time

	lifeCtx   context.Context
	cancel    context.CancelFunc
	drainWG   sync.WaitGroup
	retrainWG sync.WaitGroup
}

// New validates the configuration and starts the shard goroutines. The
// server is purely in-memory; use Open for crash-safe persistence.
func New(cfg Config) (*Server, error) {
	s, err := newCore(cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newCore builds the server's ingest state without starting workers;
// recovery restores into it before the first envelope is drained.
func newCore(cfg Config) (*Server, error) {
	if len(cfg.Users) == 0 {
		return nil, errors.New("serve: no users configured")
	}
	if err := cfg.Deviation.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Ingestor != nil && cfg.IngestorFactory != nil {
		return nil, errors.New("serve: configure either Ingestor or IngestorFactory, not both")
	}
	if cfg.Shards > 1 && cfg.Ingestor != nil {
		return nil, errors.New("serve: a prebuilt Ingestor cannot be partitioned; use IngestorFactory with Shards > 1")
	}
	s := &Server{
		cfg:           cfg,
		router:        newRouter(cfg.Shards),
		closedThrough: cfg.Start - 1,
		obs:           cfg.Observer,
	}

	// Partition the users. Placement depends only on (user ID, shard
	// count); each shard's subset keeps the global relative order, which
	// is what lets the merge walk shards in ascending global index.
	shardUsers := make([][]string, cfg.Shards)
	shardGlobal := make([][]int, cfg.Shards)
	s.userShard = make([]int, len(cfg.Users))
	s.userLocal = make([]int, len(cfg.Users))
	for u, name := range cfg.Users {
		k := s.router.shardOf(name)
		s.userShard[u] = k
		s.userLocal[u] = len(shardUsers[k])
		shardUsers[k] = append(shardUsers[k], name)
		shardGlobal[k] = append(shardGlobal[k], u)
	}

	factory := cfg.IngestorFactory
	if factory == nil {
		factory = func(users []string, start cert.Day) (Ingestor, error) {
			return NewCERTIngestor(users, start)
		}
	}
	for k := 0; k < cfg.Shards; k++ {
		sh := &shard{
			idx:           k,
			users:         shardUsers[k],
			global:        shardGlobal[k],
			closedThrough: cfg.Start - 1,
			buffered:      make(map[cert.Day][]Event),
			queue:         make(chan envelope, cfg.QueueSize),
			stats:         cfg.Observer.ShardStats(k, cfg.Shards),
		}
		if cfg.Shards == 1 && cfg.Ingestor != nil {
			sh.ing = cfg.Ingestor
		} else if len(sh.users) > 0 {
			ing, err := factory(sh.users, cfg.Start)
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d ingestor: %w", k, err)
			}
			sh.ing = ing
		}
		if sh.ing != nil {
			t := sh.ing.Table()
			if cfg.Shards > 1 && !equalStrings(t.Users(), sh.users) {
				return nil, fmt.Errorf("serve: shard %d ingestor table does not cover the shard's users", k)
			}
			ind, err := deviation.NewStreamField(t, cfg.Deviation)
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			sh.ind = ind
			if s.checker == nil {
				s.checker = sh.ing
				s.feats = t.Features()
				s.frames = t.Frames()
			} else if len(t.Features()) != len(s.feats) || t.Frames() != s.frames {
				return nil, fmt.Errorf("serve: shard %d ingestor shape differs from shard 0's", k)
			}
		}
		s.shards = append(s.shards, sh)
	}
	if s.checker == nil {
		return nil, errors.New("serve: every shard is empty")
	}

	if len(cfg.Groups) > 0 {
		if len(cfg.Membership) != len(cfg.Users) {
			return nil, fmt.Errorf("serve: membership has %d entries for %d users", len(cfg.Membership), len(cfg.Users))
		}
		sizes := make([]int, len(cfg.Groups))
		for u, g := range cfg.Membership {
			if g >= len(cfg.Groups) {
				return nil, fmt.Errorf("serve: user %d in group %d, only %d groups", u, g, len(cfg.Groups))
			}
			if g >= 0 {
				sizes[g]++
			}
		}
		s.invSize = make([]float64, len(cfg.Groups))
		for g, n := range sizes {
			if n == 0 {
				return nil, fmt.Errorf("serve: group %q has no members", cfg.Groups[g])
			}
			s.invSize[g] = 1 / float64(n)
		}
		s.hasGroups = true
	}
	if cfg.Shards > 1 {
		pub, err := s.newViewGen()
		if err != nil {
			return nil, err
		}
		sh, err := s.newViewGen()
		if err != nil {
			return nil, err
		}
		s.gen.Store(pub)
		s.shadow = sh
		s.queue = make(chan envelope, cfg.QueueSize)
	} else if s.hasGroups {
		var err error
		s.grpTbl, err = features.NewTable(cfg.Groups, s.feats, s.frames, cfg.Start, cfg.Start)
		if err != nil {
			return nil, fmt.Errorf("serve: group table: %w", err)
		}
		s.grp, err = deviation.NewStreamField(s.grpTbl, cfg.Deviation)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	return s, nil
}

// newViewGen builds one empty merged-view generation (Shards>1 only).
func (s *Server) newViewGen() (*viewGen, error) {
	// The merged view's table holds only metadata (user/feature/frame
	// shape): the detector's matrix builders read deviations, never raw
	// measurements, so the per-day measurement copies stay inside the
	// shard tables.
	viewTbl, err := features.NewTable(s.cfg.Users, s.feats, s.frames, s.cfg.Start, s.cfg.Start)
	if err != nil {
		return nil, fmt.Errorf("serve: view table: %w", err)
	}
	g := &viewGen{closedThrough: s.cfg.Start - 1}
	g.view, err = deviation.NewEmptyField(viewTbl, s.cfg.Deviation)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if s.hasGroups {
		g.grpTbl, err = features.NewTable(s.cfg.Groups, s.feats, s.frames, s.cfg.Start, s.cfg.Start)
		if err != nil {
			return nil, fmt.Errorf("serve: group table: %w", err)
		}
		g.grp, err = deviation.NewStreamField(g.grpTbl, s.cfg.Deviation)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	return g, nil
}

// start launches the shard goroutines (and, when sharded, the close
// coordinator); no envelopes are processed before it.
func (s *Server) start() {
	s.startTime = time.Now()
	s.lifeCtx, s.cancel = context.WithCancel(context.Background())
	for _, sh := range s.shards {
		s.drainWG.Add(1)
		go s.shardDrain(sh)
	}
	if len(s.shards) > 1 {
		s.drainWG.Add(1)
		go s.coordinate()
	}
}

// adoptCore replaces this server's ingest state with a freshly built
// core's. Recovery uses it to retry a snapshot load from scratch: a
// half-loaded corrupt snapshot must not leak into the next attempt.
func (s *Server) adoptCore(c *Server) {
	s.router = c.router
	s.shards = c.shards
	s.userShard = c.userShard
	s.userLocal = c.userLocal
	s.checker = c.checker
	s.feats = c.feats
	s.frames = c.frames
	s.gen.Store(c.gen.Load())
	s.shadow = c.shadow
	s.hasGroups = c.hasGroups
	s.grpTbl = c.grpTbl
	s.grp = c.grp
	s.invSize = c.invSize
	s.closedThrough = c.closedThrough
	s.queue = c.queue
}

// indField returns the field Rank reads: the published generation's
// merged view when sharded, the single shard's live field otherwise.
func (s *Server) indField() *deviation.Field {
	if g := s.gen.Load(); g != nil {
		return g.view
	}
	return s.shards[0].ind.Field()
}

// groupTable returns the live group measurement table (nil without
// groups): the published generation's when sharded, the server's own
// otherwise.
func (s *Server) groupTable() *features.Table {
	if g := s.gen.Load(); g != nil {
		return g.grpTbl
	}
	return s.grpTbl
}

// groupStream returns the live group deviation state (nil without
// groups): the published generation's when sharded, the server's own
// otherwise.
func (s *Server) groupStream() *deviation.StreamField {
	if g := s.gen.Load(); g != nil {
		return g.grp
	}
	return s.grp
}

// persistent reports whether the persistence layer is enabled.
func (s *Server) persistent() bool { return s.pcfg != nil }

// eventUser returns the user ID an event is attributed to, for shard
// routing. Valid events always carry one.
func eventUser(e Event) string {
	switch {
	case e.Cert != nil:
		return e.Cert.User
	case e.Record != nil:
		return e.Record.User
	}
	return ""
}

// Submit hands a batch of events to the shard goroutines. It blocks while
// a bounded queue is full (backpressure) until ctx is canceled or
// shutdown begins. Events for already-closed days are counted as late and
// dropped at drain time. With persistence enabled Submit additionally
// blocks until the batch is appended to the WAL(s): a nil return means
// the whole batch survives a restart. A single-shard server logs the
// batch as one frame; a sharded one logs one part per involved shard and
// recovery discards batches with missing parts — all-or-nothing either
// way. A ctx error leaves the batch's durability (and, when sharded, its
// in-memory buffering) unknown, exactly like a crash mid-call.
func (s *Server) Submit(ctx context.Context, events []Event) error {
	for _, e := range events {
		if !e.Valid() {
			return errors.New("serve: event must carry exactly one of cert/record payloads")
		}
		if err := s.checkEvent(e); err != nil {
			return err
		}
	}
	start := s.obs.Clock()
	if _, err := s.submit(ctx, events); err != nil {
		return err
	}
	s.obs.ObserveSubmit(start, len(events))
	return nil
}

// submit routes one validated batch: the single-shard direct path, or the
// cross-shard fan-out. It returns the batch ID the log assigned (0 when
// no ID was allocated — an in-memory single-shard server, or an audited
// batch routed to zero shards).
func (s *Server) submit(ctx context.Context, events []Event) (uint64, error) {
	if len(s.shards) == 1 {
		env := envelope{events: events}
		sh := s.shards[0]
		if sh.wal == nil {
			return 0, s.send(ctx, sh.queue, env, sh.stats)
		}
		if s.auditOn() {
			// Audit streams log every batch as a part record (parts=1):
			// the batch ID keys the proof index.
			env.batchID = s.nextBatch.Add(1)
			env.parts = 1
		}
		env.done = make(chan error, 1)
		if err := s.send(ctx, sh.queue, env, sh.stats); err != nil {
			return 0, err
		}
		select {
		case err := <-env.done:
			return env.batchID, err
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return s.submitSharded(ctx, events)
}

// testHookPartSent, when non-nil, runs after each part of a cross-shard
// fan-out lands in its shard queue — still inside the fan-out's snapMu
// read section. Tests use it to hold a fan-out open between two parts
// and prove a snapshot round cannot cut through the middle of a batch.
var testHookPartSent func(shard int)

// submitSharded splits one batch by shard and fans the slices out to the
// shard queues, then (with persistence) waits for every involved shard's
// WAL ack. The enqueue loop runs under snapMu's read side so a snapshot
// round can never cut through the middle of a batch's fan-out.
func (s *Server) submitSharded(ctx context.Context, events []Event) (uint64, error) {
	if s.persistent() {
		// Check the whole batch's encoded size up front, on the caller's
		// goroutine: an oversized batch is rejected before any shard
		// buffers or logs a slice of it, keeping the rejection whole. Any
		// per-shard slice encodes smaller than the full batch.
		payload, err := encodeEventsPayload(events)
		if err != nil {
			return 0, err
		}
		if len(payload)+partHeaderSize > maxWALRecord {
			return 0, fmt.Errorf("%w (%d bytes, cap %d)", ErrBatchTooLarge, len(payload), maxWALRecord)
		}
	}
	split := make([][]Event, len(s.shards))
	parts := uint32(0)
	for _, e := range events {
		k := s.router.shardOf(eventUser(e))
		if len(split[k]) == 0 {
			parts++
		}
		split[k] = append(split[k], e)
	}

	if err := s.persistErr(); err != nil {
		return 0, err
	}
	var dones []chan error
	batchID := uint64(0)
	s.snapMu.RLock()
	s.qmu.RLock()
	if s.closed {
		s.qmu.RUnlock()
		s.snapMu.RUnlock()
		return 0, ErrShuttingDown
	}
	if parts > 0 {
		enq := s.obs.Clock()
		batchID = s.nextBatch.Add(1)
		for k, evs := range split {
			if len(evs) == 0 {
				continue
			}
			env := envelope{events: evs, batchID: batchID, parts: parts}
			if s.persistent() {
				env.done = make(chan error, 1)
			}
			select {
			case s.shards[k].queue <- env:
				s.shards[k].stats.NoteQueueDepth(len(s.shards[k].queue))
				if env.done != nil {
					dones = append(dones, env.done)
				}
				if testHookPartSent != nil {
					testHookPartSent(k)
				}
			case <-ctx.Done():
				s.qmu.RUnlock()
				s.snapMu.RUnlock()
				return 0, ctx.Err()
			}
		}
		s.obs.ObserveEnqueue(enq)
	}
	s.qmu.RUnlock()
	s.snapMu.RUnlock()

	var firstErr error
	for _, done := range dones {
		select {
		case err := <-done:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return batchID, firstErr
}

// CloseDay declares that every day up to and including d is complete,
// extracts the buffered events into measurements, and advances the
// deviation windows (across every shard, then merges). It blocks until
// the advance finished (or failed).
func (s *Server) CloseDay(ctx context.Context, d cert.Day) error {
	start := s.obs.Clock()
	done := make(chan error, 1)
	front := s.queue
	var stats *obs.ShardStats
	if len(s.shards) == 1 {
		front = s.shards[0].queue
		stats = s.shards[0].stats
	}
	if err := s.send(ctx, front, envelope{closeThrough: d, isClose: true, done: done}, stats); err != nil {
		return err
	}
	select {
	case err := <-done:
		if err == nil {
			s.obs.ObserveClose(start)
		}
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// send enqueues one envelope with backpressure. stats, when non-nil, is
// the receiving shard's recording cell (the queue high-water mark is
// meaningless for the coordinator's front queue, whose sender passes nil).
func (s *Server) send(ctx context.Context, ch chan envelope, env envelope, stats *obs.ShardStats) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return ErrShuttingDown
	}
	enq := s.obs.Clock()
	select {
	case ch <- env:
		s.obs.ObserveEnqueue(enq)
		stats.NoteQueueDepth(len(ch))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// checkEvent vets an event's payload type against the ingestor. Submit
// calls it so a batch the ingestor cannot consume is rejected before it
// is queued or WAL-logged: a durable log holding an unconsumable batch
// would fail every replay at day-close. Shard ingestors are immutable
// once the drain goroutines run and all share one type, so probing any
// one of them is safe from any goroutine.
func (s *Server) checkEvent(e Event) error {
	if c, ok := s.checker.(EventChecker); ok {
		return c.CheckEvent(e)
	}
	return nil
}

// persistErr returns the fail-stop latch, or nil.
func (s *Server) persistErr() error {
	if box, ok := s.persistFail.Load().(errBox); ok && box.err != nil {
		return box.err
	}
	return nil
}

// failPersist latches the first persistence failure and returns the
// latched error. Shard goroutines may race here; the mutex keeps the
// first failure the latched one.
func (s *Server) failPersist(err error) error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if s.persistErr() == nil {
		s.persistFail.Store(errBox{fmt.Errorf("%w: %w", ErrPersistenceFailed, err)})
	}
	return s.persistErr()
}

// shardDrain is one shard's consumer goroutine. It owns the shard's day
// buffers, extractor, and WAL appender; in a single-shard server it also
// owns day-close end to end (the classic drain loop), while in a sharded
// one closes and snapshots arrive as coordinator-broadcast barriers.
func (s *Server) shardDrain(sh *shard) {
	defer s.drainWG.Done()
	single := len(s.shards) == 1
	for env := range sh.queue {
		switch {
		case env.isClose:
			if single {
				env.done <- s.drainClose(env.closeThrough)
			} else {
				env.done <- s.shardClose(sh, env.closeThrough)
			}
		case env.isSnap:
			env.done <- s.shardSnapshot(sh)
		case env.isReceipt:
			env.done <- s.shardReceipt(sh, env.rcpt)
		default:
			err := s.shardEvents(sh, env)
			if env.done != nil {
				env.done <- err
			}
		}
	}
	if sh.wal != nil {
		if err := sh.wal.close(); err != nil {
			_ = s.failPersist(err)
		}
	}
}

// shardEvents buffers one batch (or batch slice), WAL-first when
// persistence is on. Late events are filtered before logging so that
// replaying the WAL re-applies exactly the accepted events, independent
// of the closed-through day at replay time.
func (s *Server) shardEvents(sh *shard, env envelope) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	start := s.obs.Clock()
	var fresh []Event
	late := 0
	for _, e := range env.events {
		if e.Day() <= sh.closedThrough { // the shard goroutine wrote it; no lock needed
			late++
			continue
		}
		fresh = append(fresh, e)
	}
	if sh.wal != nil && (len(fresh) > 0 || env.parts > 0) {
		var payload []byte
		var bodies [][]byte
		var err error
		switch {
		case s.auditOn():
			// Audit streams always log part records (parts=1 unsharded):
			// per-event encodings become the batch's Merkle leaves.
			payload, bodies, err = encodePartPayloadAudit(env.batchID, env.parts, fresh)
		case env.parts > 0:
			// A slice of a cross-shard batch logs even when empty: the
			// batch is durable only when all its parts are on disk, and
			// every involved shard must be able to account for its part.
			payload, err = encodePartPayload(env.batchID, env.parts, fresh)
		default:
			payload, err = encodeEventsPayload(fresh)
		}
		if err != nil {
			return err // a batch that cannot encode is the batch's problem
		}
		if len(payload) > maxWALRecord {
			return fmt.Errorf("%w (%d bytes, cap %d)", ErrBatchTooLarge, len(payload), maxWALRecord)
		}
		if s.auditOn() {
			if err := sh.wal.appendEvents(payload, bodies); err != nil {
				return s.failPersist(err)
			}
			s.recordBatchAudit(sh, env.batchID)
		} else if err := sh.wal.append(payload); err != nil {
			return s.failPersist(err)
		}
	}
	sh.late.Add(int64(late))
	for _, e := range fresh {
		sh.buffered[e.Day()] = append(sh.buffered[e.Day()], e)
		sh.ingested.Add(1)
	}
	sh.stats.ObserveApply(start)
	return nil
}

// drainClose is the single-shard close path: it logs the barrier,
// advances the days, and snapshots on cadence. The close record hits the
// WAL before any table mutation (WAL-before-apply), and under
// FsyncClose/FsyncAlways the log is synced at the barrier — a crash never
// loses a closed day.
func (s *Server) drainClose(to cert.Day) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	sh := s.shards[0]
	closing := to > s.closedThrough
	if sh.wal != nil && closing {
		if err := sh.wal.appendClose(to); err != nil {
			return s.failPersist(err)
		}
		if s.pcfg.Fsync != FsyncNever {
			if err := sh.wal.sync(); err != nil {
				return s.failPersist(err)
			}
		}
	}
	if err := s.closeDays(to); err != nil {
		if sh.wal != nil && closing {
			// The barrier is already durably logged: an apply failure here
			// means memory has diverged from the log (buffered events of
			// the failed day are gone), so fail-stop rather than keep
			// serving state the log no longer describes.
			return s.failPersist(err)
		}
		return err
	}
	if sh.wal != nil && closing {
		if err := s.maybeSnapshot(); err != nil {
			return s.failPersist(err)
		}
	}
	return nil
}

// closeDays advances day by day through to, including days with no
// buffered events (zero activity is a real measurement). Single-shard
// path (and its recovery replay).
func (s *Server) closeDays(to cert.Day) error {
	sh := s.shards[0]
	for d := s.closedThrough + 1; d <= to; d++ {
		evs := sh.buffered[d]
		delete(sh.buffered, d)
		s.mu.Lock()
		err := s.advanceDay(d, evs)
		s.mu.Unlock()
		if err != nil {
			return err
		}
		s.daysSinceSnap++
	}
	return nil
}

// maybeSnapshot writes a snapshot once enough days closed since the last
// one (single-shard path).
func (s *Server) maybeSnapshot() error {
	if s.daysSinceSnap < s.pcfg.SnapshotEvery {
		return nil
	}
	start := s.obs.Clock()
	if err := s.writeSnapshot(); err != nil {
		return err
	}
	s.daysSinceSnap = 0
	s.obs.ObserveSnapshot(start, int64(s.closedThrough))
	return nil
}

// advanceDay extracts one closed day and slides every deviation window
// forward — O(users·features·frames) total, O(1) per cell. Caller holds
// the write lock. Single-shard path: the exact historical operation
// order, so measurements, group averages, and deviations are
// bit-identical to the unsharded implementation's.
func (s *Server) advanceDay(d cert.Day, evs []Event) error {
	sh := s.shards[0]
	t := sh.ing.Table()
	if err := t.EnsureDay(d); err != nil {
		return err
	}
	if err := sh.ing.ConsumeDay(d, evs); err != nil {
		return err
	}
	if s.grpTbl != nil {
		if err := s.grpTbl.EnsureDay(d); err != nil {
			return err
		}
		s.fillGroupDayInto(s.grpTbl, d)
	}
	if err := sh.ind.Advance(); err != nil {
		return err
	}
	if s.grp != nil {
		if err := s.grp.Advance(); err != nil {
			return err
		}
	}
	s.closedThrough = d
	sh.closedThrough = d
	return nil
}

// coordinate serializes day-closes for a sharded server: one barrier at a
// time, broadcast to every shard, merged after all of them ack. When the
// front queue closes (Shutdown), it closes the shard queues — it is their
// only other sender, so the close is safe.
func (s *Server) coordinate() {
	defer s.drainWG.Done()
	for env := range s.queue {
		if env.isTrainSnap {
			env.done <- s.buildTrainSnap(env.train)
			continue
		}
		env.done <- s.coordClose(env.closeThrough)
	}
	for _, sh := range s.shards {
		close(sh.queue)
	}
}

// coordClose runs one close barrier across every shard, then merges the
// closed days into the global view/group state and snapshots on cadence.
func (s *Server) coordClose(to cert.Day) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	if to <= s.closedThrough {
		return nil
	}
	acks := make([]chan error, len(s.shards))
	for i, sh := range s.shards {
		acks[i] = make(chan error, 1)
		sh.queue <- envelope{closeThrough: to, isClose: true, done: acks[i]}
	}
	var firstErr error
	for _, ack := range acks {
		if err := <-ack; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if err := s.mergeDays(to); err != nil {
		if s.persistent() {
			// Every shard durably logged the barrier; a merge failure
			// means the global view diverged from what replay would
			// rebuild, so fail-stop.
			return s.failPersist(err)
		}
		return err
	}
	if s.persistent() {
		if err := s.maybeSnapshotSharded(); err != nil {
			return s.failPersist(err)
		}
	}
	return nil
}

// shardClose applies one close barrier inside a shard: WAL the barrier,
// sync it, and extract the shard's users' days. The global group/view
// merge happens afterwards on the coordinator.
func (s *Server) shardClose(sh *shard, to cert.Day) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	closing := to > sh.closedThrough
	if sh.wal != nil && closing {
		if err := sh.wal.appendClose(to); err != nil {
			return s.failPersist(err)
		}
		if s.pcfg.Fsync != FsyncNever {
			if err := sh.wal.sync(); err != nil {
				return s.failPersist(err)
			}
		}
	}
	if err := s.shardCloseDays(sh, to); err != nil {
		if sh.wal != nil && closing {
			return s.failPersist(err)
		}
		return err
	}
	return nil
}

// shardCloseDays consumes the shard's buffered events day by day and
// advances the shard's deviation windows. No server lock is needed: rank
// queries read only the published merged generation, which the
// coordinator builds off-lock strictly after every shard acked and
// publishes with a pointer swap under the write lock.
func (s *Server) shardCloseDays(sh *shard, to cert.Day) error {
	for d := sh.closedThrough + 1; d <= to; d++ {
		evs := sh.buffered[d]
		delete(sh.buffered, d)
		if sh.ing != nil {
			if err := sh.ing.Table().EnsureDay(d); err != nil {
				return err
			}
			if err := sh.ing.ConsumeDay(d, evs); err != nil {
				return err
			}
			if err := sh.ind.Advance(); err != nil {
				return err
			}
		}
		sh.closedThrough = d
	}
	return nil
}

// mergeDays folds freshly closed days into the shadow generation with no
// lock held, then publishes it: rank queries keep scoring the current
// generation for the whole build, and the write lock is held only for
// the pointer swap plus a detector rebind. The demoted generation
// becomes the next shadow.
func (s *Server) mergeDays(to cert.Day) error {
	pub := s.gen.Load()
	if to <= pub.closedThrough {
		return nil
	}
	sh := s.shadow
	// Catch the shadow up to the published generation by bit-copy (it is
	// one publish behind, or freshly empty after recovery), then build
	// the newly closed days from the quiescent shard state.
	if err := s.catchUpGen(sh, pub); err != nil {
		return err
	}
	for d := sh.closedThrough + 1; d <= to; d++ {
		start := s.obs.Clock()
		if err := s.buildGenDay(sh, d); err != nil {
			return err
		}
		s.obs.ObserveMerge(start)
		s.obs.SetPendingMergeDays(int64(to - d))
		s.daysSinceSnap++
	}
	pubStart := s.obs.Clock()
	s.mu.Lock()
	if det := s.det.Load(); det != nil {
		var grpF *acobe.Field
		var membership []int
		if sh.grp != nil {
			grpF = sh.grp.Field()
			membership = s.cfg.Membership
		}
		rebound, err := det.Rebind(sh.view, grpF, membership)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		s.det.Store(rebound)
	}
	s.gen.Store(sh)
	s.closedThrough = to
	s.mu.Unlock()
	s.shadow = pub
	s.obs.ObserveMergePublish(pubStart)
	return nil
}

// catchUpGen replays the days src holds beyond dst into dst by pure
// bit-copy: the group measurements are copied day by day and the
// deterministic window advance replays over them (bit-identical by the
// streamed-equals-batch invariants), and the view days are copied
// directly. It also covers the freshly recovered case, where the shadow
// is empty and src carries the whole recovered span.
func (s *Server) catchUpGen(dst, src *viewGen) error {
	for d := dst.closedThrough + 1; d <= src.closedThrough; d++ {
		if dst.grpTbl != nil {
			if err := dst.grpTbl.EnsureDay(d); err != nil {
				return err
			}
			if err := dst.grpTbl.CopyDayFrom(src.grpTbl, d); err != nil {
				return err
			}
		}
		if d >= dst.view.FirstDay() {
			day := d
			s.appendViewDay(dst.view, func(u, feat, frame int) float64 {
				return src.view.Sigma(u, feat, frame, day)
			})
		}
		if dst.grp != nil {
			if err := dst.grp.Advance(); err != nil {
				return err
			}
		}
		dst.closedThrough = d
	}
	return nil
}

// buildGenDay folds one freshly closed day into a generation: group
// averages are recomputed from the shard tables in ascending global user
// order (GroupTable's exact operation order), and the day's per-user
// deviations are copied in bit-for-bit. Runs off-lock: the generation is
// not yet published and the shard state is quiescent between envelopes.
func (s *Server) buildGenDay(g *viewGen, d cert.Day) error {
	if g.grpTbl != nil {
		if err := g.grpTbl.EnsureDay(d); err != nil {
			return err
		}
		s.fillGroupDayInto(g.grpTbl, d)
	}
	if d >= g.view.FirstDay() {
		s.appendViewDay(g.view, func(u, feat, frame int) float64 {
			return s.shards[s.userShard[u]].sigma(s.userLocal[u], feat, frame, d)
		})
	}
	if g.grp != nil {
		if err := g.grp.Advance(); err != nil {
			return err
		}
	}
	g.closedThrough = d
	return nil
}

// appendViewDay appends one day to a view field, filling user rows in
// parallel across free compute workers. Each cell is a single assigned
// float64, so splitting by user rows cannot change any value.
func (s *Server) appendViewDay(view *deviation.Field, src func(u, feat, frame int) float64) {
	users := len(s.cfg.Users)
	df := view.AppendDay()
	workers := nn.WorkerBudget()
	if workers > users {
		workers = users
	}
	if workers <= 1 {
		df.FillUsers(0, users, src)
		return
	}
	chunk := (users + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < users; lo += chunk {
		hi := lo + chunk
		if hi > users {
			hi = users
		}
		if hi < users && nn.TryAcquireWorker() {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer nn.ReleaseWorker()
				df.FillUsers(lo, hi, src)
			}(lo, hi)
		} else {
			df.FillUsers(lo, hi, src)
		}
	}
	wg.Wait()
}

// measure reads one user's measurement for a closed day from the owning
// shard's table.
func (s *Server) measure(u, feat, frame int, d cert.Day) float64 {
	sh := s.shards[s.userShard[u]]
	return sh.ing.Table().At(s.userLocal[u], feat, frame, d)
}

// fillGroupDayInto computes every group's member-average measurements
// for one day into tbl, parallelized over (feature, frame) planes across
// free compute workers. The member scan is loop-inverted: each worker
// walks the membership once in ascending global user order and
// accumulates that user's measurement into its planes' per-group sums —
// O(users × planes) total instead of the naive per-cell membership scan's
// O(groups × users × planes). Per cell the additions still happen in
// ascending global user order with a single multiply by 1/size at the
// end — the exact operation order of features.Table.GroupTable,
// regardless of how the members are distributed over shards — so
// streamed group measurements are bit-identical to the batch group
// table's.
func (s *Server) fillGroupDayInto(tbl *features.Table, d cert.Day) {
	nf := len(s.feats)
	frames := s.frames
	groups := len(s.cfg.Groups)
	planes := nf * frames

	fill := func(plo, phi int) {
		sums := make([]float64, (phi-plo)*groups)
		for u, grp := range s.cfg.Membership {
			if grp < 0 {
				continue
			}
			sh := s.shards[s.userShard[u]]
			t := sh.ing.Table()
			lu := s.userLocal[u]
			for p := plo; p < phi; p++ {
				sums[(p-plo)*groups+grp] += t.At(lu, p/frames, p%frames, d)
			}
		}
		for p := plo; p < phi; p++ {
			f := p / frames
			fr := p % frames
			for g := 0; g < groups; g++ {
				tbl.Add(g, f, fr, d, sums[(p-plo)*groups+g]*s.invSize[g])
			}
		}
	}

	workers := nn.WorkerBudget()
	if workers > planes {
		workers = planes
	}
	if workers <= 1 {
		fill(0, planes)
		return
	}
	chunk := (planes + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < planes; lo += chunk {
		hi := lo + chunk
		if hi > planes {
			hi = planes
		}
		if hi < planes && nn.TryAcquireWorker() {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer nn.ReleaseWorker()
				fill(lo, hi)
			}(lo, hi)
		} else {
			fill(lo, hi)
		}
	}
	wg.Wait()
}

// detectorOptions assembles the facade options for a (re)build.
func (s *Server) detectorOptions() []acobe.Option {
	opts := append([]acobe.Option(nil), s.cfg.DetectorOptions...)
	return append(opts, acobe.WithGroupDeviations(s.hasGroups))
}

// buildTrainSnap stitches a training measurement table straight from the
// shard tables, rows in global user order. It runs on the coordinator
// (serialized against closes), so every shard's state is quiescent; the
// span is capped at the last day every shard has closed — which may be
// ahead of the published merged view, so retraining never waits for (or
// reads) a merge. Row copies parallelize across free compute workers;
// each cell is a single copied float64, so the split cannot change any
// value.
func (s *Server) buildTrainSnap(req *trainSnapReq) error {
	day := cert.Day(0)
	for i, sh := range s.shards {
		if i == 0 || sh.closedThrough < day {
			day = sh.closedThrough
		}
	}
	if day < s.cfg.Start {
		return errors.New("serve: no closed days to train on")
	}
	tbl, err := features.NewTable(s.cfg.Users, s.feats, s.frames, s.cfg.Start, day)
	if err != nil {
		return fmt.Errorf("serve: training table: %w", err)
	}
	days := int(day-s.cfg.Start) + 1
	nf := len(s.feats)
	copyShard := func(sh *shard) {
		if sh.ing == nil {
			return
		}
		st := sh.ing.Table()
		for lu, gu := range sh.global {
			for f := 0; f < nf; f++ {
				for fr := 0; fr < s.frames; fr++ {
					copy(tbl.Series(gu, f, fr), st.Series(lu, f, fr)[:days])
				}
			}
		}
	}
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		if i < len(s.shards)-1 && nn.TryAcquireWorker() {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				defer nn.ReleaseWorker()
				copyShard(sh)
			}(sh)
		} else {
			copyShard(sh)
		}
	}
	wg.Wait()
	req.tbl = tbl
	req.day = day
	return nil
}

// newDetector builds an untrained detector over the given fields.
func (s *Server) newDetector(ind, grp *acobe.Field) (*acobe.Detector, error) {
	var membership []int
	if grp != nil {
		membership = s.cfg.Membership
	}
	return acobe.NewDetectorFromFields(ind, grp, membership, s.detectorOptions()...)
}

// Retrain fits a fresh ensemble on the training days [from, to] and swaps
// it in atomically; the previous detector keeps serving Rank until the
// swap. A sharded server assembles its training fields straight from the
// shard measurement tables (never the merged view); an unsharded one
// clones the live fields under a read lock. Either way ingest and
// queries proceed concurrently and the per-aspect models fit in parallel
// under the compute worker budget. With wait=false the fit continues in
// the background (tied to the server's lifetime context); with wait=true
// it is additionally tied to ctx and the call blocks until the swap or
// an error.
func (s *Server) Retrain(ctx context.Context, from, to cert.Day, wait bool) error {
	if !s.retraining.CompareAndSwap(false, true) {
		return ErrRetrainInProgress
	}
	retrainStart := s.obs.Clock()
	var det *acobe.Detector
	var err error
	if len(s.shards) > 1 {
		det, err = s.shardTrainDetector(ctx)
	} else {
		det, err = s.cloneTrainDetector()
	}
	if err != nil {
		s.retraining.Store(false)
		return err
	}

	trainCtx, cancelTrain := context.WithCancel(s.lifeCtx)
	var stop func() bool
	if wait {
		stop = context.AfterFunc(ctx, cancelTrain)
	}
	run := func() error {
		defer s.retraining.Store(false)
		defer cancelTrain()
		if stop != nil {
			defer stop()
		}
		err := func() error {
			if _, err := det.Fit(trainCtx, from, to); err != nil {
				return err
			}
			return s.swapIn(det)
		}()
		s.lastTrainErr.Store(errBox{err})
		s.obs.ObserveRetrain(retrainStart, err)
		return err
	}
	if wait {
		return run()
	}
	s.retrainWG.Add(1)
	go func() {
		defer s.retrainWG.Done()
		_ = run() // surfaced via Status.LastTrainError
	}()
	return nil
}

// cloneTrainDetector builds an untrained detector over clones of the
// live fields taken under the read lock (the unsharded training path).
func (s *Server) cloneTrainDetector() (*acobe.Detector, error) {
	cloneStart := s.obs.Clock()
	s.mu.RLock()
	indSnap := s.indField().Clone()
	var grpSnap *acobe.Field
	if gs := s.groupStream(); gs != nil {
		grpSnap = gs.Field().Clone()
	}
	s.mu.RUnlock()
	s.obs.ObserveRetrainClone(cloneStart)
	return s.newDetector(indSnap, grpSnap)
}

// shardTrainDetector builds an untrained detector for a sharded server
// without reading the merged view: the coordinator stitches a training
// measurement table from the quiescent shard tables, and the batch
// pipeline derives the deviation fields from it — bit-identical to the
// streamed view by the streamed-equals-batch invariants. No server lock
// is taken at any point, and the training span is whatever every shard
// has closed, merged or not.
func (s *Server) shardTrainDetector(ctx context.Context) (*acobe.Detector, error) {
	snapStart := s.obs.Clock()
	req := &trainSnapReq{}
	done := make(chan error, 1)
	if err := s.send(ctx, s.queue, envelope{isTrainSnap: true, train: req, done: done}, nil); err != nil {
		return nil, err
	}
	select {
	case err := <-done:
		if err != nil {
			return nil, err
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.obs.ObserveRetrainClone(snapStart)

	ind, err := deviation.ComputeField(req.tbl, s.cfg.Deviation)
	if err != nil {
		return nil, fmt.Errorf("serve: training field: %w", err)
	}
	var grpField *acobe.Field
	if s.hasGroups {
		gt, err := req.tbl.GroupTable(s.cfg.Groups, s.cfg.Membership)
		if err != nil {
			return nil, fmt.Errorf("serve: training group table: %w", err)
		}
		grpField, err = deviation.ComputeField(gt, s.cfg.Deviation)
		if err != nil {
			return nil, fmt.Errorf("serve: training group field: %w", err)
		}
	}
	return s.newDetector(ind, grpField)
}

// errBox lets atomic.Value hold nil errors uniformly.
type errBox struct{ err error }

// swapIn rebinds the snapshot-trained models onto the live fields and
// publishes the resulting detector. Bind and publish happen under one
// continuous read lock so a concurrent generation publish cannot slip a
// newer view between them (the publish rebinds the serving detector
// itself under the write lock, which excludes this section).
func (s *Server) swapIn(trained *acobe.Detector) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var membership []int
	grpF := s.liveGroupField()
	if grpF != nil {
		membership = s.cfg.Membership
	}
	live, err := trained.Rebind(s.indField(), grpF, membership)
	if err != nil {
		return err
	}
	s.det.Store(live)
	return nil
}

func (s *Server) liveGroupField() *acobe.Field {
	gs := s.groupStream()
	if gs == nil {
		return nil
	}
	return gs.Field()
}

// Rank scores [from, to] with the current ensemble and returns the
// ordered investigation list. It holds the read lock for the duration of
// scoring so a concurrent day-close cannot shift the window mid-query.
// The ranking runs over the merged global view, so its order (including
// tie handling) is independent of the shard count.
func (s *Server) Rank(ctx context.Context, from, to cert.Day) ([]acobe.Ranked, error) {
	start := s.obs.Clock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	// Load the detector under the lock: a generation publish rebinds and
	// stores the serving detector under the write lock, so a detector
	// loaded here is bound to the generation it will score.
	det := s.det.Load()
	if det == nil {
		return nil, ErrNoModel
	}
	ranked, err := det.Rank(ctx, from, to)
	if err == nil {
		s.obs.ObserveRank(start)
	}
	return ranked, err
}

// StatusSchemaVersion is the version stamped into every status report.
// Additions bump nothing (new fields are backward compatible); a removed
// or re-typed field bumps the version.
const StatusSchemaVersion = 1

// ShardStatus is one shard's row in the status report.
type ShardStatus struct {
	Shard      int   `json:"shard"`
	Users      int   `json:"users"`
	QueueDepth int   `json:"queue_depth"`
	Ingested   int64 `json:"ingested"`
	Late       int64 `json:"late"`
}

// PersistStatus describes the durability layer when it is enabled.
type PersistStatus struct {
	Fsync         string `json:"fsync"`
	SnapshotEvery int    `json:"snapshot_every"`
}

// Status is a point-in-time snapshot of the daemon's state. The flat
// fields are the v0 surface and never change; SchemaVersion, the shard
// rows, persistence block, and metrics snapshot are additive.
type Status struct {
	SchemaVersion int      `json:"schema_version"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Users         int      `json:"users"`
	Shards        int      `json:"shards"`
	ClosedThrough cert.Day `json:"closed_through"`
	Ingested      int64    `json:"ingested"`
	Late          int64    `json:"late"`
	QueueDepth    int      `json:"queue_depth"`
	Fitted        bool     `json:"fitted"`
	Retraining    bool     `json:"retraining"`
	// LastTrainError carries the most recent retrain failure ("" if the
	// last retrain succeeded or none ran yet).
	LastTrainError string `json:"last_train_error,omitempty"`
	// PersistError is the fail-stop persistence failure, if any: once set,
	// the server refuses new work rather than diverge from its log.
	PersistError string `json:"persist_error,omitempty"`
	// ShardStatus has one row per shard (present even without an observer).
	ShardStatus []ShardStatus `json:"shard_status"`
	// Persistence is nil when the server runs in-memory only.
	Persistence *PersistStatus `json:"persistence,omitempty"`
	// Metrics is the observer scrape, nil when no observer is attached.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// Status reports ingest and model state.
func (s *Server) Status() Status {
	s.mu.RLock()
	closed := s.closedThrough
	s.mu.RUnlock()
	st := Status{
		SchemaVersion: StatusSchemaVersion,
		Users:         len(s.cfg.Users),
		Shards:        len(s.shards),
		ClosedThrough: closed,
		Fitted:        s.det.Load() != nil,
		Retraining:    s.retraining.Load(),
	}
	if !s.startTime.IsZero() {
		st.UptimeSeconds = time.Since(s.startTime).Seconds()
	}
	st.ShardStatus = make([]ShardStatus, len(s.shards))
	for k, sh := range s.shards {
		row := ShardStatus{
			Shard:      k,
			Users:      len(sh.users),
			QueueDepth: len(sh.queue),
			Ingested:   sh.ingested.Load(),
			Late:       sh.late.Load(),
		}
		st.ShardStatus[k] = row
		st.Ingested += row.Ingested
		st.Late += row.Late
		st.QueueDepth += row.QueueDepth
	}
	if s.queue != nil {
		st.QueueDepth += len(s.queue)
	}
	if s.persistent() {
		st.Persistence = &PersistStatus{
			Fsync:         s.pcfg.Fsync.String(),
			SnapshotEvery: s.pcfg.SnapshotEvery,
		}
	}
	if box, ok := s.lastTrainErr.Load().(errBox); ok && box.err != nil {
		st.LastTrainError = box.err.Error()
	}
	if err := s.persistErr(); err != nil {
		st.PersistError = err.Error()
	}
	st.Metrics = s.MetricsSnapshot()
	return st
}

// MetricsSnapshot scrapes the attached observer and overlays the live
// gauges only the server knows (per-shard user counts, current queue
// depths, ingested/late totals). Returns nil when the server runs
// without an observer.
func (s *Server) MetricsSnapshot() *obs.Snapshot {
	snap := s.obs.Snapshot()
	if snap == nil {
		return nil
	}
	for i := range snap.Shards {
		if i >= len(s.shards) {
			break
		}
		sh := s.shards[i]
		snap.Shards[i].Users = len(sh.users)
		snap.Shards[i].QueueDepth = len(sh.queue)
		snap.Shards[i].Ingested = sh.ingested.Load()
		snap.Shards[i].Late = sh.late.Load()
	}
	return snap
}

// Observer returns the observer the server was configured with (nil when
// running uninstrumented).
func (s *Server) Observer() *obs.Observer { return s.obs }

// ClosedThrough returns the last closed (fully extracted and merged) day.
func (s *Server) ClosedThrough() cert.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closedThrough
}

// Detector returns the currently serving detector, or nil before the
// first successful retrain.
func (s *Server) Detector() *acobe.Detector { return s.det.Load() }

// Shutdown stops accepting work, cancels any in-flight retrain, drains
// every already-queued batch and day-close to completion, and waits for
// the workers to exit (bounded by ctx). Only the front queue is closed
// here; the coordinator closes the shard queues after its own loop
// drains, so no goroutine ever sends on a closed channel.
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		if len(s.shards) > 1 {
			close(s.queue)
		} else {
			close(s.shards[0].queue)
		}
		s.cancel()
	}
	s.qmu.Unlock()

	done := make(chan struct{})
	go func() {
		s.drainWG.Wait()
		s.retrainWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
