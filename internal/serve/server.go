// Package serve is the online half of the repository: a long-running
// scoring service that ingests audit-log events continuously, advances the
// per-user deviation state one closed day at a time in O(1) per cell
// (deviation.StreamField over running sums), and answers ranked
// investigation-list queries from a trained ensemble through pkg/acobe.
//
// The data path is built for byte-identical parity with the offline batch
// pipeline: the same extractors fill the measurement tables, the group
// table repeats GroupTable's member-sum order, the streaming window
// advance performs the batch field's floating-point operations in the
// batch order, and training/scoring run through the same facade. Feeding
// the daemon a dataset day by day therefore yields exactly the ranked
// list the batch pipeline prints for that dataset (asserted against the
// committed golden snapshots).
//
// Concurrency model:
//
//   - One drain goroutine owns the day buffers; producers hand it event
//     batches through a bounded queue (Submit blocks when full —
//     backpressure instead of unbounded growth).
//   - Day-close mutates tables and fields under a writer lock; rank
//     queries score under a reader lock, so queries never observe a
//     half-advanced day.
//   - Retraining clones the fields under a reader lock and trains on the
//     frozen snapshot without any lock, so ingest and queries continue
//     while a new ensemble fits; the trained weights are swapped in
//     atomically (old detector answers until the instant of the swap).
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/features"
	"acobe/internal/nn"
	"acobe/pkg/acobe"
)

// Typed failures surfaced to API clients.
var (
	// ErrNoModel is returned by Rank before the first successful retrain.
	ErrNoModel = errors.New("serve: no trained model yet")
	// ErrRetrainInProgress is returned when a retrain is already running.
	ErrRetrainInProgress = errors.New("serve: retrain already in progress")
	// ErrShuttingDown is returned by Submit/CloseDay after Shutdown began.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrBatchTooLarge is returned by Submit when one batch's WAL encoding
	// exceeds the frame cap. The batch is rejected whole; the server keeps
	// running — an input-size problem is the client's to split, not a
	// persistence failure.
	ErrBatchTooLarge = errors.New("serve: batch too large for one WAL frame")
)

// Config wires a Server.
type Config struct {
	// Users lists every scored user ID, in index order.
	Users []string
	// Groups and Membership declare the peer groups (Membership[u] indexes
	// Groups; -1 excludes the user). Leave Groups empty to serve without
	// group deviations (the No-Group variant).
	Groups     []string
	Membership []int
	// Start is the first measured day.
	Start cert.Day
	// Deviation carries ω, 𝒟, Δ, ε and weighting.
	Deviation deviation.Config
	// Ingestor fills the measurement table from closed days' events.
	// Defaults to a CERTIngestor over Users starting at Start.
	Ingestor Ingestor
	// DetectorOptions configure the ensemble built at each retrain
	// (aspects, model size, seed, votes, train stride, ...). Group
	// deviation inclusion is derived from Groups and must not be set here.
	DetectorOptions []acobe.Option
	// QueueSize bounds the ingest queue in batches (default 64). When the
	// queue is full, Submit blocks — backpressure, not buffering.
	QueueSize int
}

// envelope is one unit of drain-goroutine work: an event batch or (with
// isClose) a close-through-day control item. done, when non-nil, receives
// the outcome — always set for closes, and set for event batches when
// persistence is on (Submit acks only after the batch hit the WAL).
type envelope struct {
	events       []Event
	closeThrough cert.Day
	isClose      bool
	done         chan error
}

// Server is the online scoring daemon's engine, independent of its HTTP
// shell (cmd/acobed).
type Server struct {
	cfg     Config
	ing     Ingestor
	grpTbl  *features.Table
	ind     *deviation.StreamField
	grp     *deviation.StreamField // nil without groups
	invSize []float64              // 1/|group|, GroupTable's exact factor

	// mu orders day-close writes against rank-query reads of the live
	// tables and fields. closedThrough is published under it.
	mu            sync.RWMutex
	closedThrough cert.Day

	// buffered holds events of not-yet-closed days; owned by the drain
	// goroutine exclusively.
	buffered map[cert.Day][]Event

	qmu    sync.RWMutex // guards queue sends against close(queue)
	queue  chan envelope
	closed bool // under qmu

	ingested atomic.Int64
	late     atomic.Int64

	det          atomic.Pointer[acobe.Detector]
	retraining   atomic.Bool
	lastTrainErr atomic.Value // error from the most recent retrain, or nil

	// Persistence (nil pcfg = disabled). The WAL appender and snapshot
	// cadence are owned by the drain goroutine (and by recovery, which
	// runs before it starts). persistFail is the fail-stop latch: set
	// once, read by every later Submit/CloseDay.
	pcfg          *PersistConfig
	fs            persistFS
	wal           *wal
	persistFail   atomic.Value // errBox
	daysSinceSnap int
	recovery      *RecoverInfo

	lifeCtx   context.Context
	cancel    context.CancelFunc
	drainWG   sync.WaitGroup
	retrainWG sync.WaitGroup
}

// New validates the configuration and starts the drain goroutine. The
// server is purely in-memory; use Open for crash-safe persistence.
func New(cfg Config) (*Server, error) {
	s, err := newCore(cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newCore builds the server's ingest state without starting workers;
// recovery restores into it before the first envelope is drained.
func newCore(cfg Config) (*Server, error) {
	if len(cfg.Users) == 0 {
		return nil, errors.New("serve: no users configured")
	}
	if err := cfg.Deviation.Validate(); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	s := &Server{
		cfg:           cfg,
		ing:           cfg.Ingestor,
		closedThrough: cfg.Start - 1,
		buffered:      make(map[cert.Day][]Event),
		queue:         make(chan envelope, cfg.QueueSize),
	}
	if s.ing == nil {
		ing, err := NewCERTIngestor(cfg.Users, cfg.Start)
		if err != nil {
			return nil, err
		}
		s.ing = ing
	}
	var err error
	s.ind, err = deviation.NewStreamField(s.ing.Table(), cfg.Deviation)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if len(cfg.Groups) > 0 {
		if len(cfg.Membership) != len(cfg.Users) {
			return nil, fmt.Errorf("serve: membership has %d entries for %d users", len(cfg.Membership), len(cfg.Users))
		}
		t := s.ing.Table()
		s.grpTbl, err = features.NewTable(cfg.Groups, t.Features(), t.Frames(), cfg.Start, cfg.Start)
		if err != nil {
			return nil, fmt.Errorf("serve: group table: %w", err)
		}
		sizes := make([]int, len(cfg.Groups))
		for u, g := range cfg.Membership {
			if g >= len(cfg.Groups) {
				return nil, fmt.Errorf("serve: user %d in group %d, only %d groups", u, g, len(cfg.Groups))
			}
			if g >= 0 {
				sizes[g]++
			}
		}
		s.invSize = make([]float64, len(cfg.Groups))
		for g, n := range sizes {
			if n == 0 {
				return nil, fmt.Errorf("serve: group %q has no members", cfg.Groups[g])
			}
			s.invSize[g] = 1 / float64(n)
		}
		s.grp, err = deviation.NewStreamField(s.grpTbl, cfg.Deviation)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	return s, nil
}

// start launches the drain goroutine; no envelopes are processed before it.
func (s *Server) start() {
	s.lifeCtx, s.cancel = context.WithCancel(context.Background())
	s.drainWG.Add(1)
	go s.drain()
}

// adoptCore replaces this server's ingest state with a freshly built
// core's. Recovery uses it to retry a snapshot load from scratch: a
// half-loaded corrupt snapshot must not leak into the next attempt.
func (s *Server) adoptCore(c *Server) {
	s.ing = c.ing
	s.grpTbl = c.grpTbl
	s.ind = c.ind
	s.grp = c.grp
	s.invSize = c.invSize
	s.closedThrough = c.closedThrough
	s.buffered = c.buffered
	s.ingested.Store(0)
	s.late.Store(0)
}

// Submit hands a batch of events to the drain goroutine. It blocks while
// the bounded queue is full (backpressure) until ctx is canceled or
// shutdown begins. Events for already-closed days are counted as late and
// dropped at drain time. With persistence enabled Submit additionally
// blocks until the batch is appended to the WAL: a nil return means the
// whole batch survives a restart (batches are logged as a single frame,
// all-or-nothing).
func (s *Server) Submit(ctx context.Context, events []Event) error {
	for _, e := range events {
		if !e.Valid() {
			return errors.New("serve: event must carry exactly one of cert/record payloads")
		}
		if err := s.checkEvent(e); err != nil {
			return err
		}
	}
	env := envelope{events: events}
	if s.wal == nil {
		return s.send(ctx, env)
	}
	env.done = make(chan error, 1)
	if err := s.send(ctx, env); err != nil {
		return err
	}
	select {
	case err := <-env.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CloseDay declares that every day up to and including d is complete,
// extracts the buffered events into measurements, and advances the
// deviation windows. It blocks until the advance finished (or failed).
func (s *Server) CloseDay(ctx context.Context, d cert.Day) error {
	done := make(chan error, 1)
	if err := s.send(ctx, envelope{closeThrough: d, isClose: true, done: done}); err != nil {
		return err
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// send enqueues one envelope with backpressure.
func (s *Server) send(ctx context.Context, env envelope) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return ErrShuttingDown
	}
	select {
	case s.queue <- env:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// checkEvent vets an event's payload type against the ingestor. Submit
// calls it so a batch the ingestor cannot consume is rejected before it
// is queued or WAL-logged: a durable log holding an unconsumable batch
// would fail every replay at day-close. s.ing is immutable once the drain
// goroutine runs, so the type assertion is safe from any goroutine.
func (s *Server) checkEvent(e Event) error {
	if c, ok := s.ing.(EventChecker); ok {
		return c.CheckEvent(e)
	}
	return nil
}

// persistErr returns the fail-stop latch, or nil.
func (s *Server) persistErr() error {
	if box, ok := s.persistFail.Load().(errBox); ok && box.err != nil {
		return box.err
	}
	return nil
}

// failPersist latches the first persistence failure and returns the
// latched error. Only the drain goroutine (and pre-drain recovery) calls
// it, so the check-then-store is race-free.
func (s *Server) failPersist(err error) error {
	if s.persistErr() == nil {
		s.persistFail.Store(errBox{fmt.Errorf("%w: %w", ErrPersistenceFailed, err)})
	}
	return s.persistErr()
}

// drain is the single consumer of the ingest queue. It owns the per-day
// buffers; day-close work happens here so that table mutation is
// single-writer by construction.
func (s *Server) drain() {
	defer s.drainWG.Done()
	for env := range s.queue {
		if env.isClose {
			env.done <- s.drainClose(env.closeThrough)
			continue
		}
		err := s.drainEvents(env.events)
		if env.done != nil {
			env.done <- err
		}
	}
	if s.wal != nil {
		if err := s.wal.close(); err != nil {
			_ = s.failPersist(err)
		}
	}
}

// drainEvents buffers one batch, WAL-first when persistence is on. Late
// events are filtered before logging so that replaying the WAL re-applies
// exactly the accepted events, independent of the closed-through day at
// replay time.
func (s *Server) drainEvents(events []Event) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	var fresh []Event
	late := 0
	for _, e := range events {
		if e.Day() <= s.closedThrough { // drain goroutine wrote it; no lock needed
			late++
			continue
		}
		fresh = append(fresh, e)
	}
	if s.wal != nil && len(fresh) > 0 {
		payload, err := encodeEventsPayload(fresh)
		if err != nil {
			return err // a batch that cannot encode is the batch's problem
		}
		if len(payload) > maxWALRecord {
			return fmt.Errorf("%w (%d bytes, cap %d)", ErrBatchTooLarge, len(payload), maxWALRecord)
		}
		if err := s.wal.append(payload); err != nil {
			return s.failPersist(err)
		}
	}
	s.late.Add(int64(late))
	for _, e := range fresh {
		s.buffered[e.Day()] = append(s.buffered[e.Day()], e)
		s.ingested.Add(1)
	}
	return nil
}

// drainClose logs the barrier, advances the days, and snapshots on
// cadence. The close record hits the WAL before any table mutation
// (WAL-before-apply), and under FsyncClose/FsyncAlways the log is synced
// at the barrier — a crash never loses a closed day.
func (s *Server) drainClose(to cert.Day) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	closing := to > s.closedThrough
	if s.wal != nil && closing {
		if err := s.wal.appendClose(to); err != nil {
			return s.failPersist(err)
		}
		if s.pcfg.Fsync != FsyncNever {
			if err := s.wal.sync(); err != nil {
				return s.failPersist(err)
			}
		}
	}
	if err := s.closeDays(to); err != nil {
		if s.wal != nil && closing {
			// The barrier is already durably logged: an apply failure here
			// means memory has diverged from the log (buffered events of
			// the failed day are gone), so fail-stop rather than keep
			// serving state the log no longer describes.
			return s.failPersist(err)
		}
		return err
	}
	if s.wal != nil && closing {
		if err := s.maybeSnapshot(); err != nil {
			return s.failPersist(err)
		}
	}
	return nil
}

// closeDays advances day by day through to, including days with no
// buffered events (zero activity is a real measurement).
func (s *Server) closeDays(to cert.Day) error {
	for d := s.closedThrough + 1; d <= to; d++ {
		evs := s.buffered[d]
		delete(s.buffered, d)
		s.mu.Lock()
		err := s.advanceDay(d, evs)
		s.mu.Unlock()
		if err != nil {
			return err
		}
		s.daysSinceSnap++
	}
	return nil
}

// maybeSnapshot writes a snapshot once enough days closed since the last
// one.
func (s *Server) maybeSnapshot() error {
	if s.daysSinceSnap < s.pcfg.SnapshotEvery {
		return nil
	}
	if err := s.writeSnapshot(); err != nil {
		return err
	}
	s.daysSinceSnap = 0
	return nil
}

// advanceDay extracts one closed day and slides every deviation window
// forward — O(users·features·frames) total, O(1) per cell. Caller holds
// the write lock.
func (s *Server) advanceDay(d cert.Day, evs []Event) error {
	t := s.ing.Table()
	if err := t.EnsureDay(d); err != nil {
		return err
	}
	if err := s.ing.ConsumeDay(d, evs); err != nil {
		return err
	}
	if s.grpTbl != nil {
		if err := s.grpTbl.EnsureDay(d); err != nil {
			return err
		}
		s.fillGroupDay(d)
	}
	if err := s.ind.Advance(); err != nil {
		return err
	}
	if s.grp != nil {
		if err := s.grp.Advance(); err != nil {
			return err
		}
	}
	s.closedThrough = d
	return nil
}

// fillGroupDay computes every group's member-average measurements for one
// day, sharded across free compute workers. Each cell sums its members in
// ascending user order and multiplies by 1/size — the exact operation
// order of features.Table.GroupTable, so streamed group measurements are
// bit-identical to the batch group table's.
func (s *Server) fillGroupDay(d cert.Day) {
	t := s.ing.Table()
	nf := len(t.Features())
	frames := t.Frames()
	cells := len(s.cfg.Groups) * nf * frames

	fill := func(lo, hi int) {
		for c := lo; c < hi; c++ {
			g := c / (nf * frames)
			rem := c % (nf * frames)
			f := rem / frames
			fr := rem % frames
			var sum float64
			for u, grp := range s.cfg.Membership {
				if grp == g {
					sum += t.At(u, f, fr, d)
				}
			}
			s.grpTbl.Add(g, f, fr, d, sum*s.invSize[g])
		}
	}

	workers := nn.WorkerBudget()
	if workers > cells {
		workers = cells
	}
	if workers <= 1 {
		fill(0, cells)
		return
	}
	chunk := (cells + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < cells; lo += chunk {
		hi := lo + chunk
		if hi > cells {
			hi = cells
		}
		if hi < cells && nn.TryAcquireWorker() {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer nn.ReleaseWorker()
				fill(lo, hi)
			}(lo, hi)
		} else {
			fill(lo, hi)
		}
	}
	wg.Wait()
}

// detectorOptions assembles the facade options for a (re)build.
func (s *Server) detectorOptions() []acobe.Option {
	opts := append([]acobe.Option(nil), s.cfg.DetectorOptions...)
	return append(opts, acobe.WithGroupDeviations(s.grp != nil))
}

// newDetector builds an untrained detector over the given fields.
func (s *Server) newDetector(ind, grp *acobe.Field) (*acobe.Detector, error) {
	var membership []int
	if grp != nil {
		membership = s.cfg.Membership
	}
	return acobe.NewDetectorFromFields(ind, grp, membership, s.detectorOptions()...)
}

// Retrain fits a fresh ensemble on the training days [from, to] and swaps
// it in atomically; the previous detector keeps serving Rank until the
// swap. Training runs on a snapshot of the deviation fields cloned under a
// read lock, so ingest and queries proceed concurrently. With wait=false
// the fit continues in the background (tied to the server's lifetime
// context); with wait=true it is additionally tied to ctx and the call
// blocks until the swap or an error.
func (s *Server) Retrain(ctx context.Context, from, to cert.Day, wait bool) error {
	if !s.retraining.CompareAndSwap(false, true) {
		return ErrRetrainInProgress
	}
	s.mu.RLock()
	indSnap := s.ind.Field().Clone()
	var grpSnap *acobe.Field
	if s.grp != nil {
		grpSnap = s.grp.Field().Clone()
	}
	s.mu.RUnlock()

	det, err := s.newDetector(indSnap, grpSnap)
	if err != nil {
		s.retraining.Store(false)
		return err
	}

	trainCtx, cancelTrain := context.WithCancel(s.lifeCtx)
	var stop func() bool
	if wait {
		stop = context.AfterFunc(ctx, cancelTrain)
	}
	run := func() error {
		defer s.retraining.Store(false)
		defer cancelTrain()
		if stop != nil {
			defer stop()
		}
		err := func() error {
			if _, err := det.Fit(trainCtx, from, to); err != nil {
				return err
			}
			return s.swapIn(det)
		}()
		s.lastTrainErr.Store(errBox{err})
		return err
	}
	if wait {
		return run()
	}
	s.retrainWG.Add(1)
	go func() {
		defer s.retrainWG.Done()
		_ = run() // surfaced via Status.LastTrainError
	}()
	return nil
}

// errBox lets atomic.Value hold nil errors uniformly.
type errBox struct{ err error }

// swapIn rebinds the snapshot-trained models onto the live fields and
// publishes the resulting detector. The weight transfer goes through the
// model serializer, which round-trips float64 bits exactly.
func (s *Server) swapIn(trained *acobe.Detector) error {
	var buf bytes.Buffer
	if err := trained.SaveModels(&buf); err != nil {
		return fmt.Errorf("serve: snapshot models: %w", err)
	}
	s.mu.RLock()
	live, err := s.newDetector(s.ind.Field(), s.liveGroupField())
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	if err := live.LoadModels(&buf); err != nil {
		return fmt.Errorf("serve: rebind models: %w", err)
	}
	s.det.Store(live)
	return nil
}

func (s *Server) liveGroupField() *acobe.Field {
	if s.grp == nil {
		return nil
	}
	return s.grp.Field()
}

// Rank scores [from, to] with the current ensemble and returns the
// ordered investigation list. It holds the read lock for the duration of
// scoring so a concurrent day-close cannot shift the window mid-query.
func (s *Server) Rank(ctx context.Context, from, to cert.Day) ([]acobe.Ranked, error) {
	det := s.det.Load()
	if det == nil {
		return nil, ErrNoModel
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return det.Rank(ctx, from, to)
}

// Status is a point-in-time snapshot of the daemon's state.
type Status struct {
	Users         int      `json:"users"`
	ClosedThrough cert.Day `json:"closed_through"`
	Ingested      int64    `json:"ingested"`
	Late          int64    `json:"late"`
	QueueDepth    int      `json:"queue_depth"`
	Fitted        bool     `json:"fitted"`
	Retraining    bool     `json:"retraining"`
	// LastTrainError carries the most recent retrain failure ("" if the
	// last retrain succeeded or none ran yet).
	LastTrainError string `json:"last_train_error,omitempty"`
	// PersistError is the fail-stop persistence failure, if any: once set,
	// the server refuses new work rather than diverge from its log.
	PersistError string `json:"persist_error,omitempty"`
}

// Status reports ingest and model state.
func (s *Server) Status() Status {
	s.mu.RLock()
	closed := s.closedThrough
	s.mu.RUnlock()
	st := Status{
		Users:         len(s.cfg.Users),
		ClosedThrough: closed,
		Ingested:      s.ingested.Load(),
		Late:          s.late.Load(),
		QueueDepth:    len(s.queue),
		Fitted:        s.det.Load() != nil,
		Retraining:    s.retraining.Load(),
	}
	if box, ok := s.lastTrainErr.Load().(errBox); ok && box.err != nil {
		st.LastTrainError = box.err.Error()
	}
	if err := s.persistErr(); err != nil {
		st.PersistError = err.Error()
	}
	return st
}

// ClosedThrough returns the last closed (fully extracted) day.
func (s *Server) ClosedThrough() cert.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closedThrough
}

// Detector returns the currently serving detector, or nil before the
// first successful retrain.
func (s *Server) Detector() *acobe.Detector { return s.det.Load() }

// Shutdown stops accepting work, cancels any in-flight retrain, drains
// every already-queued batch and day-close to completion, and waits for
// the workers to exit (bounded by ctx).
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		s.cancel()
	}
	s.qmu.Unlock()

	done := make(chan struct{})
	go func() {
		s.drainWG.Wait()
		s.retrainWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
