package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/pkg/acobe"
)

func newHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		Users:     []string{"alice", "bob"},
		Start:     0,
		Deviation: testDevCfg(),
		DetectorOptions: []acobe.Option{
			acobe.WithAspects(acobe.Aspect{Name: "logons", Features: []string{"coarse:logon"}}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, ts
}

func TestHTTPAPI(t *testing.T) {
	srv, ts := newHTTPServer(t)
	client := ts.Client()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, string(b)
	}
	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := client.Post(ts.URL+path, "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, string(b)
	}

	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// Malformed and ambiguous events are rejected up front.
	if resp, _ := post("/v1/ingest", "{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json accepted: %d", resp.StatusCode)
	}
	if resp, _ := post("/v1/ingest", "{}"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty event accepted: %d", resp.StatusCode)
	}

	// A valid CERT logon for day 0, then close the day.
	ev := Event{Cert: &cert.Event{Type: cert.EventLogon, Activity: cert.ActLogon,
		Time: cert.Day(0).Date().Add(9 * time.Hour), User: "alice", PC: "PC-1"}}
	line, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	if resp, body := post("/v1/ingest", string(line)+"\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %q", resp.StatusCode, body)
	}
	if resp, body := post("/v1/close?day=0", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("close: %d %q", resp.StatusCode, body)
	} else if !strings.Contains(body, `"closed_through":0`) {
		t.Fatalf("close body: %q", body)
	}
	if got := srv.shards[0].ingested.Load(); got != 1 {
		t.Fatalf("ingested = %d, want 1", got)
	}

	// Dates parse in both formats.
	if resp, _ := post("/v1/close?day="+cert.Day(1).String(), ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("date-format close failed: %d", resp.StatusCode)
	}
	if resp, _ := post("/v1/close?day=bogus", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus day accepted: %d", resp.StatusCode)
	}

	// No model yet: rank is 503, status says unfitted.
	if resp, _ := get("/v1/rank?from=0&to=1"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("rank without model: %d", resp.StatusCode)
	}
	var st Status
	resp, body := get("/v1/status")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status body %q: %v", body, err)
	}
	if st.Fitted || st.Users != 2 || st.ClosedThrough != 1 {
		t.Fatalf("status = %+v", st)
	}

	// A concurrent retrain maps to 409.
	srv.retraining.Store(true)
	if resp, _ := post("/v1/retrain?from=0&to=1&wait=1", ""); resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting retrain: %d", resp.StatusCode)
	}
	srv.retraining.Store(false)

	// Missing parameters are 400s.
	if resp, _ := get("/v1/rank?from=0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rank without to: %d", resp.StatusCode)
	}
	if resp, _ := post("/v1/retrain", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("retrain without range: %d", resp.StatusCode)
	}
}
