package serve

import (
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"sort"

	"acobe/internal/audit"
	"acobe/internal/cert"
	"acobe/pkg/acobe"
)

// Audit-mode API errors.
var (
	// ErrAuditDisabled is returned by proof/receipt calls on a server
	// running without PersistConfig.Audit.
	ErrAuditDisabled = errors.New("serve: audit disabled")
	// ErrUnknownBatch is returned by Proof for a batch ID the retained log
	// does not hold (never acknowledged, or pruned behind the restart
	// horizon — the index covers every batch since the loaded snapshot's
	// oldest retained segment).
	ErrUnknownBatch = errors.New("serve: unknown batch")
	// ErrUnknownEvent is returned by Proof for an event index past the
	// batch's end.
	ErrUnknownEvent = errors.New("serve: batch has no such event")
)

// partAudit is the proof index's record of one logged batch part: where
// its frame sits, the Merkle root the chain committed for it, and the
// leaf hashes the inclusion proof paths are built from.
type partAudit struct {
	shard  int
	pos    walPos
	root   audit.Head
	leaves []audit.Head
}

// auditOn reports whether the tamper-evident audit layer is enabled.
func (s *Server) auditOn() bool { return s.pcfg != nil && s.pcfg.Audit }

// auditPub returns the audit signing key's public half.
func (s *Server) auditPub() ed25519.PublicKey {
	return s.auditPriv.Public().(ed25519.PublicKey)
}

// AuditFingerprint returns the signing key's pinned fingerprint ("" when
// audit is off).
func (s *Server) AuditFingerprint() string {
	if !s.auditOn() {
		return ""
	}
	return audit.Fingerprint(s.auditPub())
}

// recordBatchAudit indexes the part frame the shard just appended: its
// position, committed root, and leaf hashes, keyed by batch ID. Runs on
// the shard goroutine right after appendEvents, while the Merkle scratch
// tree still holds this batch's leaves.
func (s *Server) recordBatchAudit(sh *shard, batchID uint64) {
	a := sh.wal.aud
	leaves := append([]audit.Head(nil), a.tree.Leaves()...)
	s.auditMu.Lock()
	s.auditIdx[batchID] = append(s.auditIdx[batchID], partAudit{
		shard:  sh.idx,
		pos:    sh.wal.lastPos,
		root:   a.root,
		leaves: leaves,
	})
	s.auditMu.Unlock()
}

// SubmitProvable is Submit plus the assigned batch ID, the handle a
// client later passes to Proof (or GET /v1/proof) to obtain inclusion
// proofs for the batch's events. Only an audited server assigns IDs to
// every batch, so it requires PersistConfig.Audit.
func (s *Server) SubmitProvable(ctx context.Context, events []Event) (uint64, error) {
	if !s.auditOn() {
		return 0, ErrAuditDisabled
	}
	for _, e := range events {
		if !e.Valid() {
			return 0, errors.New("serve: event must carry exactly one of cert/record payloads")
		}
		if err := s.checkEvent(e); err != nil {
			return 0, err
		}
	}
	start := s.obs.Clock()
	id, err := s.submit(ctx, events)
	if err != nil {
		return 0, err
	}
	s.obs.ObserveSubmit(start, len(events))
	return id, nil
}

// ProofResult locates and proves one ingested event: the shard log frame
// holding it, the batch Merkle root the hash chain committed at append
// time, and the inclusion path from the event's leaf to that root.
type ProofResult struct {
	BatchID uint64
	// Event is the global index within the batch: the concatenation of
	// the batch's parts in ascending shard order (a single-shard batch has
	// one part, so the global index is the part index).
	Event int
	Shard int
	Seg   uint64
	Off   int64
	Root  audit.Head
	Proof audit.Proof
}

// Proof builds an inclusion proof for event index `event` of batch
// `batchID`. Any acknowledged batch since the last restart's recovery
// horizon is provable; verification needs only the proof, the root, and
// (for chain anchoring) an offline VerifyAudit walk of the log.
func (s *Server) Proof(batchID uint64, event int) (ProofResult, error) {
	if !s.auditOn() {
		return ProofResult{}, ErrAuditDisabled
	}
	s.auditMu.RLock()
	parts := append([]partAudit(nil), s.auditIdx[batchID]...)
	s.auditMu.RUnlock()
	if len(parts) == 0 {
		return ProofResult{}, ErrUnknownBatch
	}
	// Global event order = parts in ascending shard order, each part in
	// its logged event order.
	sort.Slice(parts, func(i, j int) bool { return parts[i].shard < parts[j].shard })
	if event < 0 {
		return ProofResult{}, ErrUnknownEvent
	}
	idx := event
	for _, p := range parts {
		if idx < len(p.leaves) {
			pf, err := audit.Prove(p.leaves, idx)
			if err != nil {
				return ProofResult{}, err
			}
			pf.BatchID = batchID
			return ProofResult{
				BatchID: batchID, Event: event,
				Shard: p.shard, Seg: p.pos.seg, Off: p.pos.off,
				Root: p.root, Proof: pf,
			}, nil
		}
		idx -= len(p.leaves)
	}
	return ProofResult{}, ErrUnknownEvent
}

// BatchEvents returns how many events batch batchID holds across all its
// parts (0, ErrUnknownBatch if the index does not know it).
func (s *Server) BatchEvents(batchID uint64) (int, error) {
	if !s.auditOn() {
		return 0, ErrAuditDisabled
	}
	s.auditMu.RLock()
	parts := s.auditIdx[batchID]
	n := 0
	for _, p := range parts {
		n += len(p.leaves)
	}
	s.auditMu.RUnlock()
	if len(parts) == 0 {
		return 0, ErrUnknownBatch
	}
	return n, nil
}

// RankReceipt ranks [from, to] and logs a signed rank receipt into shard
// 0's audit stream: an ed25519-signed record binding the SHA-256 of the
// emitted ranked list (its JSON encoding) to the chain head at the
// moment of emission. The caller keeps the returned receipt; the offline
// verifier checks its signature and chain anchoring, and the caller can
// re-hash the list it was served to match ListHash.
func (s *Server) RankReceipt(ctx context.Context, from, to cert.Day) ([]acobe.Ranked, audit.Receipt, error) {
	if !s.auditOn() {
		return nil, audit.Receipt{}, ErrAuditDisabled
	}
	ranked, err := s.Rank(ctx, from, to)
	if err != nil {
		return nil, audit.Receipt{}, err
	}
	body, err := json.Marshal(ranked)
	if err != nil {
		return nil, audit.Receipt{}, err
	}
	rc := &audit.Receipt{From: int64(from), To: int64(to), ListHash: audit.Head(sha256.Sum256(body))}
	done := make(chan error, 1)
	sh := s.shards[0]
	if err := s.send(ctx, sh.queue, envelope{isReceipt: true, rcpt: rc, done: done}, sh.stats); err != nil {
		return nil, audit.Receipt{}, err
	}
	select {
	case err := <-done:
		if err != nil {
			return nil, audit.Receipt{}, err
		}
	case <-ctx.Done():
		return nil, audit.Receipt{}, ctx.Err()
	}
	return ranked, *rc, nil
}

// shardReceipt appends one signed receipt on the shard goroutine. The
// sign callback runs inside appendReceipt after any rotation settled the
// chain head the receipt anchors to. Receipts are synced like barriers:
// the point of a receipt is surviving scrutiny later.
func (s *Server) shardReceipt(sh *shard, rc *audit.Receipt) error {
	if err := s.persistErr(); err != nil {
		return err
	}
	if err := sh.wal.appendReceipt(rc, func(r *audit.Receipt) { r.Sign(s.auditPriv) }); err != nil {
		return s.failPersist(err)
	}
	if s.pcfg.Fsync != FsyncNever {
		if err := sh.wal.sync(); err != nil {
			return s.failPersist(err)
		}
	}
	return nil
}
