package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/features"
	"acobe/pkg/acobe"
)

// gen is the deterministic measurement function shared by the streaming
// and batch sides of the parity tests.
func gen(u, f, frame int, d cert.Day) float64 {
	h := uint64(u+1)*0x9e3779b97f4a7c15 + uint64(f+1)*0xbf58476d1ce4e5b9 + uint64(frame+1)*0x94d049bb133111eb + uint64(d+1)*0x2545f4914f6cdd1d
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	v := float64(h%7) + 1
	if u == 5 && d >= 60 { // the last user goes anomalous in the test window
		v += 25
	}
	return v
}

var (
	testUsers  = []string{"u0", "u1", "u2", "u3", "u4", "u5"}
	testFeats  = []string{"fa", "fb"}
	testGroups = []string{"g0", "g1"}
	testMember = []int{0, 0, 0, 1, 1, 1}
)

func testDevCfg() deviation.Config {
	return deviation.Config{Window: 8, MatrixDays: 3, Delta: 3, Epsilon: 1, Weighted: true}
}

func testDetOpts() []acobe.Option {
	return []acobe.Option{
		acobe.WithAspects(acobe.Aspect{Name: "a", Features: testFeats}),
		acobe.WithSeed(11),
		acobe.WithVotes(1),
		acobe.WithTrainStride(2),
		acobe.WithModelConfig(func(dim int) acobe.ModelConfig {
			cfg := acobe.FastModelConfig(dim)
			cfg.Hidden = []int{12, 6}
			cfg.Epochs = 15
			return cfg
		}),
	}
}

// stubIngestor writes gen() measurements for each closed day, ignoring
// events; blockCh (when set) stalls ConsumeDay until released so tests can
// hold the drain goroutine busy.
type stubIngestor struct {
	tbl     *features.Table
	blockCh chan struct{}
	entered chan struct{} // signaled when ConsumeDay starts blocking
}

func newStubIngestor(t *testing.T, start cert.Day) *stubIngestor {
	t.Helper()
	tbl, err := features.NewTable(testUsers, testFeats, 2, start, start)
	if err != nil {
		t.Fatal(err)
	}
	return &stubIngestor{tbl: tbl}
}

func (s *stubIngestor) Table() *features.Table { return s.tbl }

func (s *stubIngestor) ConsumeDay(d cert.Day, events []Event) error {
	if s.blockCh != nil {
		if s.entered != nil {
			s.entered <- struct{}{}
		}
		<-s.blockCh
	}
	for u := range testUsers {
		for f := range testFeats {
			for frame := 0; frame < 2; frame++ {
				s.tbl.Add(u, f, frame, d, gen(u, f, frame, d))
			}
		}
	}
	return nil
}

func newTestServer(t *testing.T, ing Ingestor, queue int) *Server {
	t.Helper()
	s, err := New(Config{
		Users:           testUsers,
		Groups:          testGroups,
		Membership:      testMember,
		Start:           0,
		Deviation:       testDevCfg(),
		Ingestor:        ing,
		DetectorOptions: testDetOpts(),
		QueueSize:       queue,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestServeMatchesBatch is the incremental-parity acceptance test: a
// server fed day by day must produce exactly the investigation list (and
// the raw per-day scores) of the offline batch pipeline over the same
// measurements.
func TestServeMatchesBatch(t *testing.T) {
	const lastDay = cert.Day(69)
	ctx := context.Background()

	// Online: close 70 days one at a time, retrain on 0..55, rank 60..69.
	srv := newTestServer(t, newStubIngestor(t, 0), 16)
	for d := cert.Day(0); d <= lastDay; d++ {
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Retrain(ctx, 0, 55, true); err != nil {
		t.Fatal(err)
	}
	gotList, err := srv.Rank(ctx, 60, lastDay)
	if err != nil {
		t.Fatal(err)
	}
	gotSeries, err := srv.Detector().Score(ctx, 60, lastDay)
	if err != nil {
		t.Fatal(err)
	}

	// Batch: same measurements, one table up front, facade end to end.
	tbl, err := features.NewTable(testUsers, testFeats, 2, 0, lastDay)
	if err != nil {
		t.Fatal(err)
	}
	for u := range testUsers {
		for f := range testFeats {
			for frame := 0; frame < 2; frame++ {
				for d := cert.Day(0); d <= lastDay; d++ {
					tbl.Add(u, f, frame, d, gen(u, f, frame, d))
				}
			}
		}
	}
	opts := append(testDetOpts(),
		acobe.WithGroups(testGroups, testMember),
		acobe.WithDeviationConfig(testDevCfg()))
	det, err := acobe.NewDetector(tbl, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Fit(ctx, 0, 55); err != nil {
		t.Fatal(err)
	}
	wantList, err := det.Rank(ctx, 60, lastDay)
	if err != nil {
		t.Fatal(err)
	}
	wantSeries, err := det.Score(ctx, 60, lastDay)
	if err != nil {
		t.Fatal(err)
	}

	if len(gotList) != len(wantList) {
		t.Fatalf("served list has %d rows, batch %d", len(gotList), len(wantList))
	}
	for i := range wantList {
		g, w := gotList[i], wantList[i]
		if g.User != w.User || g.Priority != w.Priority {
			t.Errorf("list[%d]: served %s/%d, batch %s/%d", i, g.User, g.Priority, w.User, w.Priority)
		}
		for a := range w.Ranks {
			if g.Ranks[a] != w.Ranks[a] {
				t.Errorf("list[%d] ranks differ: %v vs %v", i, g.Ranks, w.Ranks)
			}
		}
	}
	for a := range wantSeries {
		g, w := gotSeries[a], wantSeries[a]
		if g.From != w.From || g.To != w.To {
			t.Fatalf("aspect %d span: served %v..%v, batch %v..%v", a, g.From, g.To, w.From, w.To)
		}
		for u := range w.Scores {
			for i := range w.Scores[u] {
				if g.Scores[u][i] != w.Scores[u][i] {
					t.Fatalf("aspect %d user %d day %d: served score %v != batch %v (must be bit-identical)",
						a, u, i, g.Scores[u][i], w.Scores[u][i])
				}
			}
		}
	}
}

// TestServeIncrementalRetrainAndGrowth: the served window keeps extending
// after a retrain — new closed days are scoreable without retraining, and
// a second retrain over a longer window still works.
func TestServeIncrementalGrowth(t *testing.T) {
	ctx := context.Background()
	srv := newTestServer(t, newStubIngestor(t, 0), 16)
	for d := cert.Day(0); d <= 55; d++ {
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Retrain(ctx, 0, 50, true); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Rank(ctx, 50, 55); err != nil {
		t.Fatal(err)
	}
	// Close ten more days; the existing model must score them immediately.
	for d := cert.Day(56); d <= 65; d++ {
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	list, err := srv.Rank(ctx, 60, 65)
	if err != nil {
		t.Fatal(err)
	}
	if list[0].User != "u5" {
		t.Errorf("top after growth = %s, want u5", list[0].User)
	}
	if err := srv.Retrain(ctx, 0, 60, true); err != nil {
		t.Fatal(err)
	}
}

// TestBackpressure: a full bounded queue must block Submit (honoring the
// context) instead of buffering without limit.
func TestBackpressure(t *testing.T) {
	ing := newStubIngestor(t, 0)
	ing.blockCh = make(chan struct{})
	ing.entered = make(chan struct{}, 1)
	srv := newTestServer(t, ing, 2)
	ctx := context.Background()

	// Stall the drain goroutine inside a day-close and wait until it is
	// actually blocked there before filling the queue.
	closeErr := make(chan error, 1)
	go func() { closeErr <- srv.CloseDay(ctx, 0) }()
	select {
	case <-ing.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("drain goroutine never entered the stalled day-close")
	}

	// Fill the queue to capacity while drain is stuck.
	ev := func(d cert.Day) []Event {
		return []Event{{Cert: &cert.Event{Type: cert.EventLogon, Time: cert.Day(d).Date(), User: "u0"}}}
	}
	deadline := time.Now().Add(5 * time.Second)
	filled := 0
	for filled < 2 {
		sctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		err := srv.Submit(sctx, ev(1))
		cancel()
		if err == nil {
			filled++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatal("could not fill queue while drain was stalled")
		}
	}

	// The queue is full: the next submit must block and then fail with the
	// context error, not grow the queue.
	sctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Submit(sctx, ev(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit on full queue: %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("submit returned after %v without blocking for the context", elapsed)
	}
	if depth := len(srv.shards[0].queue); depth > 2 {
		t.Fatalf("queue grew past its bound: %d", depth)
	}

	close(ing.blockCh) // release drain; cleanup shuts down
	if err := <-closeErr; err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrains: batches and day-closes already queued when Shutdown
// begins are processed to completion before Shutdown returns.
func TestShutdownDrains(t *testing.T) {
	ing := newStubIngestor(t, 0)
	ing.blockCh = make(chan struct{}, 1024)
	srv := newTestServer(t, ing, 64)
	ctx := context.Background()

	done := make(chan error, 1)
	go func() { done <- srv.CloseDay(ctx, 9) }() // 10 days of work queued

	// Give the close op time to enter the drain loop, then shut down while
	// it is still blocked mid-day.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 1024; i++ {
		ing.blockCh <- struct{}{}
	}
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := srv.ClosedThrough(); got != 9 {
		t.Fatalf("closed through %v after drain, want 9", got)
	}
	// After shutdown, new work is refused.
	if err := srv.CloseDay(ctx, 10); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("CloseDay after shutdown: %v, want ErrShuttingDown", err)
	}
}

// TestShutdownCancelsRetrain: a shutdown mid-retrain must cancel training
// and return within the acceptance bound (2s) while the previously
// trained detector keeps answering queries up to the end.
func TestShutdownCancelsRetrain(t *testing.T) {
	ing := newStubIngestor(t, 0)
	srv, err := New(Config{
		Users:      testUsers,
		Groups:     testGroups,
		Membership: testMember,
		Start:      0,
		Deviation:  testDevCfg(),
		Ingestor:   ing,
		DetectorOptions: []acobe.Option{
			acobe.WithAspects(acobe.Aspect{Name: "a", Features: testFeats}),
			acobe.WithSeed(11),
			acobe.WithModelConfig(func(dim int) acobe.ModelConfig {
				cfg := acobe.FastModelConfig(dim)
				cfg.Hidden = []int{32, 16}
				cfg.Epochs = 1_000_000 // never finishes: shutdown must cut it
				cfg.EarlyStopDelta = 0
				return cfg
			}),
		},
		QueueSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for d := cert.Day(0); d <= 40; d++ {
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	// First model: train quickly by temporarily overriding nothing — use a
	// detector trained out of band and swapped in through the same path.
	quick, err := acobe.NewDetectorFromFields(srv.indField().Clone(), srv.grp.Field().Clone(), testMember,
		append(testDetOpts(), acobe.WithGroupDeviations(true))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quick.Fit(ctx, 0, 35); err != nil {
		t.Fatal(err)
	}
	if err := srv.swapIn(quick); err != nil {
		t.Fatal(err)
	}

	// Kick off the never-ending retrain in the background.
	if err := srv.Retrain(ctx, 0, 35, false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if !srv.Status().Retraining {
		t.Fatal("background retrain not running")
	}
	// Old detector still answers mid-retrain.
	if _, err := srv.Rank(ctx, 35, 40); err != nil {
		t.Fatalf("rank during retrain: %v", err)
	}

	start := time.Now()
	sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown mid-retrain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shutdown took %v, want under 2s", elapsed)
	}
	// The canceled retrain must not have replaced the serving model.
	if _, err := srv.Rank(ctx, 35, 40); err != nil {
		t.Fatalf("rank after shutdown: %v", err)
	}
	if st := srv.Status(); st.LastTrainError == "" {
		t.Error("canceled retrain left no error in status")
	}
}

// TestRetrainMutualExclusion: only one retrain may run at a time.
func TestRetrainMutualExclusion(t *testing.T) {
	ing := newStubIngestor(t, 0)
	ing.blockCh = nil
	srv := newTestServer(t, ing, 16)
	ctx := context.Background()
	for d := cert.Day(0); d <= 40; d++ {
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	srv.retraining.Store(true) // simulate an in-flight retrain
	if err := srv.Retrain(ctx, 0, 35, true); !errors.Is(err, ErrRetrainInProgress) {
		t.Fatalf("concurrent retrain: %v, want ErrRetrainInProgress", err)
	}
	srv.retraining.Store(false)
}

// TestRankBeforeTraining returns the typed sentinel.
func TestRankBeforeTraining(t *testing.T) {
	srv := newTestServer(t, newStubIngestor(t, 0), 16)
	if _, err := srv.Rank(context.Background(), 0, 10); !errors.Is(err, ErrNoModel) {
		t.Fatalf("rank without model: %v, want ErrNoModel", err)
	}
}
