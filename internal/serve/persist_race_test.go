package serve

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"acobe/internal/cert"
)

// TestPersistConcurrentUse hammers one persisted server from four sides at
// once — ingest+close (which snapshots, rotates, and prunes segments on the
// drain goroutine), rank queries, a retrain, and finally a shutdown racing
// the still-running readers. It asserts no deadlock and a consistent,
// recoverable final state; the -race build (make test-race) is where it
// earns its keep.
func TestPersistConcurrentUse(t *testing.T) {
	dir := t.TempDir()
	pc := PersistConfig{
		Dir:           dir,
		SnapshotEvery: 3,       // snapshot every few closes, concurrently with queries
		SegmentBytes:  1 << 15, // force segment rotation + pruning
	}
	srv, _, err := Open(persistCfg(), pc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const lastDay = cert.Day(29)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ct := srv.ClosedThrough()
				if ct >= 1 {
					// Errors are expected while the window is short or no
					// model is trained; data races are what we're after.
					_, _ = srv.Rank(ctx, ct-1, ct)
				}
				_ = srv.Status()
				_ = srv.LastRecovery()
			}
		}()
	}

	var trainer sync.WaitGroup
	trainer.Add(1)
	go func() {
		defer trainer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if srv.ClosedThrough() >= 14 {
				err := srv.Retrain(ctx, 0, 12, true)
				if err == nil || errors.Is(err, ErrRetrainInProgress) {
					return
				}
			}
		}
	}()

	for d := cert.Day(0); d <= lastDay; d++ {
		if err := srv.Submit(ctx, persistDayEvents(d)); err != nil {
			t.Fatalf("submit day %v: %v", d, err)
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatalf("close day %v: %v", d, err)
		}
	}

	// Shut down while the readers are still querying: Rank/Status against a
	// stopped server must stay safe.
	shutdown(t, srv)
	close(stop)
	readers.Wait()
	trainer.Wait()

	if got := srv.ClosedThrough(); got != lastDay {
		t.Fatalf("closed through %v, want %v", got, lastDay)
	}
	if st := srv.Status(); st.PersistError != "" {
		t.Fatalf("persistence failed during concurrent use: %s", st.PersistError)
	}

	// The surviving files must recover to the exact same state.
	want := serverStateBytes(t, srv)
	b, info, err := Open(persistCfg(), pc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if info.ClosedThrough != lastDay {
		t.Fatalf("recovered ClosedThrough = %v, want %v", info.ClosedThrough, lastDay)
	}
	if got := serverStateBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from the live server's final state")
	}
}
