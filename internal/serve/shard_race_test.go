package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/pkg/acobe"
)

// TestShardConcurrentLifecycle hammers a sharded, persistent server with
// everything at once — concurrent multi-writer ingest, staggered day
// closes, rank queries against a live detector, snapshot rounds riding the
// close cadence, and a shutdown racing the tail of the load. Its job is to
// give the race detector (make test-race) every cross-shard edge:
// coordinator fan-out, per-shard WAL appends, the merge barrier, detector
// swap, and the snapshot broadcast.
func TestShardConcurrentLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Users:      testUsers,
		Groups:     testGroups,
		Membership: testMember,
		Start:      0,
		Deviation:  testDevCfg(),
		Shards:     4, // real CERT ingestor per shard via the default factory
		DetectorOptions: []acobe.Option{
			acobe.WithAspects(acobe.ACOBEAspects()[:1]...),
			acobe.WithSeed(11),
			acobe.WithVotes(1),
			acobe.WithTrainStride(4),
			acobe.WithModelConfig(func(dim int) acobe.ModelConfig {
				mc := acobe.FastModelConfig(dim)
				mc.Hidden = []int{8}
				mc.Epochs = 4
				return mc
			}),
		},
		QueueSize: 32,
	}
	srv, _, err := Open(cfg, PersistConfig{Dir: dir, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Warm up enough closed days for a model, then train it so Rank runs
	// for real during the storm.
	for d := cert.Day(0); d <= 30; d++ {
		if err := srv.Submit(ctx, persistDayEvents(d)); err != nil {
			t.Fatal(err)
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Retrain(ctx, 0, 25, true); err != nil {
		t.Fatal(err)
	}

	const lastDay = cert.Day(50)
	var wg sync.WaitGroup

	// Writers: several goroutines push slices of each open day's events.
	// A batch may race past its day's close and be late-filtered — that is
	// the point; nothing may tear.
	dayCh := make(chan cert.Day, 64)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range dayCh {
				evs := persistDayEvents(d)
				// Each writer submits an interleaved quarter of the day.
				var part []Event
				for i := w; i < len(evs); i += 4 {
					part = append(part, evs[i])
				}
				if err := srv.Submit(ctx, part); err != nil &&
					!errors.Is(err, ErrShuttingDown) && !errors.Is(err, context.Canceled) {
					t.Errorf("submit day %v: %v", d, err)
					return
				}
			}
		}()
	}

	// Readers: rank and status polls against whatever is closed.
	stopRead := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				to := srv.ClosedThrough()
				if to >= 20 {
					if _, err := srv.Rank(ctx, to-5, to); err != nil && !errors.Is(err, ErrNoModel) {
						t.Errorf("rank through %v: %v", to, err)
						return
					}
				}
				_ = srv.Status()
			}
		}()
	}

	// Closer: staggered day closes chasing the writers.
	for d := cert.Day(31); d <= lastDay; d++ {
		for w := 0; w < 4; w++ {
			dayCh <- d
		}
		if d%3 == 0 {
			time.Sleep(time.Millisecond) // let writers race the barrier
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatalf("close day %v: %v", d, err)
		}
	}
	close(dayCh)
	close(stopRead)
	wg.Wait()

	if got := srv.ClosedThrough(); got != lastDay {
		t.Fatalf("closed through %v, want %v", got, lastDay)
	}
	st := srv.Status()
	if st.Shards != 4 {
		t.Fatalf("status reports %d shards, want 4", st.Shards)
	}
	sctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}

	// The directory the storm left behind must recover to the same cut.
	re, info, err := Open(cfg, PersistConfig{Dir: dir, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, re)
	if info.ClosedThrough != lastDay {
		t.Fatalf("recovered cut %v, want %v", info.ClosedThrough, lastDay)
	}
	if !info.SnapshotLoaded {
		t.Error("snapshot cadence of 5 over 50 days left no loadable manifest")
	}
}

// TestShardShutdownRacesSubmitters: shutdown racing a pack of submitters
// must neither deadlock nor panic; every submitter gets either an ack or
// ErrShuttingDown.
func TestShardShutdownRacesSubmitters(t *testing.T) {
	for _, n := range []int{1, 4} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			srv, err := New(Config{
				Users:      testUsers,
				Groups:     testGroups,
				Membership: testMember,
				Start:      0,
				Deviation:  testDevCfg(),
				Shards:     n,
				QueueSize:  4,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			var wg sync.WaitGroup
			start := make(chan struct{})
			for w := 0; w < 8; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for i := 0; i < 50; i++ {
						err := srv.Submit(ctx, persistDayEvents(cert.Day(w*50+i)))
						if err != nil {
							if !errors.Is(err, ErrShuttingDown) {
								t.Errorf("submit: %v", err)
							}
							return
						}
					}
				}()
			}
			close(start)
			time.Sleep(2 * time.Millisecond)
			sctx, cancel := context.WithTimeout(ctx, 15*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
		})
	}
}
