package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/testkit"
)

// These tests extend the crash matrix to the sharded layout: faults that
// hit ONE shard's WAL or snapshot stream while its siblings stay healthy.
// The recovery invariants under test: a consistent cut is restored (never
// a mix of shard states from different barriers), cross-shard batches are
// durable all-or-nothing, and any hole in a single shard's history fails
// loudly instead of silently serving a partial state.

func shardPersistCfg(shards int) Config {
	cfg := persistCfg()
	cfg.Shards = shards // default factory: one CERT ingestor per shard
	return cfg
}

// shardStateBytes is serverStateBytes plus the merged-view probe, so a
// recovered sharded server is compared on both its per-shard state and the
// cross-shard merge.
func shardStateBytes(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(serverStateBytes(t, s))
	to := s.ClosedThrough()
	if to >= 0 {
		for _, bits := range probeState(t, s, 0, to) {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], bits)
			buf.Write(b[:])
		}
	}
	return buf.Bytes()
}

// referenceShardState runs an uninterrupted sharded server over days
// [0, to] and returns its state probe.
func referenceShardState(t *testing.T, shards int, to cert.Day) []byte {
	t.Helper()
	srv, err := New(shardPersistCfg(shards))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	feedDays(t, srv, 0, to)
	return shardStateBytes(t, srv)
}

// TestShardTornTailTruncated: garbage appended to a single shard's last
// WAL segment (a torn write on one disk stripe) is truncated on recovery;
// every other shard replays in full and the merged state matches the
// pre-crash state exactly.
func TestShardTornTailTruncated(t *testing.T) {
	for _, shards := range []int{3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			a, _, err := Open(shardPersistCfg(shards), PersistConfig{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			feedDays(t, a, 0, 10)
			want := shardStateBytes(t, a)
			shutdown(t, a)

			// Tear one shard's tail: half a frame of garbage.
			walDir := filepath.Join(dir, "wal")
			victim := 1
			segs, err := listSegments(walDir, walShardPrefix(victim))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no WAL segments for shard %d (%v)", victim, err)
			}
			f, err := os.OpenFile(walSegPath(walDir, walShardPrefix(victim), segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			f.Close()

			b, info, err := Open(shardPersistCfg(shards), PersistConfig{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer shutdown(t, b)
			if info.TornBytes != 11 {
				t.Fatalf("TornBytes = %d, want 11", info.TornBytes)
			}
			if info.ClosedThrough != 10 {
				t.Fatalf("recovered cut %v, want 10", info.ClosedThrough)
			}
			if got := shardStateBytes(t, b); !bytes.Equal(got, want) {
				t.Fatal("recovered state differs from pre-crash state")
			}
		})
	}
}

// TestShardPartialBatchDropped: a crash mid-fan-out leaves a batch's part
// on some shards but not all. Recovery must drop every surviving part —
// the batch was never acknowledged — and restore exactly the acknowledged
// prefix.
func TestShardPartialBatchDropped(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	a, _, err := Open(shardPersistCfg(shards), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, 8)
	want := shardStateBytes(t, a)
	shutdown(t, a)

	// Forge the crash artifact: one shard holds a part of a 2-part batch
	// whose sibling frame never hit its own log.
	payload, err := encodePartPayload(9999, 2, []Event{
		{Cert: &cert.Event{Type: cert.EventLogon, Time: cert.Day(9).Date(), User: testUsers[0], Activity: cert.ActLogon}},
	})
	if err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(dir, "wal")
	segs, err := listSegments(walDir, walShardPrefix(0))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments for shard 0 (%v)", err)
	}
	f, err := os.OpenFile(walSegPath(walDir, walShardPrefix(0), segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeFrame(payload)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, info, err := Open(shardPersistCfg(shards), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if info.DroppedPartialBatches != 1 {
		t.Fatalf("DroppedPartialBatches = %d, want 1", info.DroppedPartialBatches)
	}
	if n := info.BufferedEvents[9]; n != 0 {
		t.Fatalf("partial batch leaked %d buffered events", n)
	}
	if got := shardStateBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from the acknowledged prefix")
	}
}

// TestShardDeadDiskFailStopAndRecover: a dead disk on one shard's WAL
// latches the whole server (no shard may run ahead of a sibling's log),
// and a restart over the surviving files recovers a consistent cut from
// which the stream resumes to exactly the uninterrupted state.
func TestShardDeadDiskFailStopAndRecover(t *testing.T) {
	const shards, lastDay = 3, cert.Day(14)
	dir := t.TempDir()
	ctx := context.Background()
	plan := &testkit.FaultPlan{Name: walShardPrefix(1), Op: "write", After: 6_000}
	a, _, err := Open(shardPersistCfg(shards), PersistConfig{
		Dir: dir,
		Hooks: Hooks{
			WrapWriter: func(name string, f WritableFile) WritableFile { return plan.WrapWriter(name, f) },
			BeforeOp:   plan.BeforeOp,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[cert.Day]bool)
	var ferr error
	for d := cert.Day(0); d <= lastDay; d++ {
		if err := a.Submit(ctx, persistDayEvents(d)); err != nil {
			ferr = err
			break
		}
		acked[d] = true
		if err := a.CloseDay(ctx, d); err != nil {
			ferr = err
			break
		}
	}
	if ferr == nil {
		t.Fatal("fault never fired; the byte budget no longer matches the stream")
	}
	if !errors.Is(ferr, ErrPersistenceFailed) || !errors.Is(ferr, testkit.ErrInjected) {
		t.Fatalf("failure = %v, want ErrPersistenceFailed wrapping ErrInjected", ferr)
	}
	shutdown(t, a)

	b, info, err := Open(shardPersistCfg(shards), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	// Resume: resubmit every day the crashed run did not get acknowledged
	// or that recovery does not hold buffered, then close through lastDay.
	for d := info.ClosedThrough + 1; d <= lastDay; d++ {
		if !acked[d] && info.BufferedEvents[d] == 0 {
			if err := b.Submit(ctx, persistDayEvents(d)); err != nil {
				t.Fatalf("resubmit day %v: %v", d, err)
			}
		} else if acked[d] && info.BufferedEvents[d] != len(persistDayEvents(d)) {
			t.Fatalf("acknowledged day %v recovered torn: %d of %d events",
				d, info.BufferedEvents[d], len(persistDayEvents(d)))
		}
	}
	if err := b.CloseDay(ctx, lastDay); err != nil {
		t.Fatal(err)
	}
	if got, want := shardStateBytes(t, b), referenceShardState(t, shards, lastDay); !bytes.Equal(got, want) {
		t.Fatal("resumed state differs from uninterrupted run")
	}
}

// TestShardSnapshotFaultFallsBack: a torn write during ONE shard's
// snapshot publish must not poison the cut — the manifest for that round
// never publishes, and recovery falls back to the previous complete
// generation (or a full replay) and still reaches the right state.
func TestShardSnapshotFaultFallsBack(t *testing.T) {
	const shards, lastDay = 3, cert.Day(17)
	dir := t.TempDir()
	ctx := context.Background()
	// Budget tears shard 2's snapshot on its first written byte.
	plan := &testkit.FaultPlan{Name: strings.TrimSuffix(snapShardPrefix(2), "-"), Op: "write", After: 1}
	pc := PersistConfig{
		Dir: dir, SnapshotEvery: 5,
		Hooks: Hooks{
			WrapWriter: func(name string, f WritableFile) WritableFile { return plan.WrapWriter(name, f) },
			BeforeOp:   plan.BeforeOp,
		},
	}
	a, _, err := Open(shardPersistCfg(shards), pc)
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[cert.Day]bool)
	var ferr error
	for d := cert.Day(0); d <= lastDay; d++ {
		if err := a.Submit(ctx, persistDayEvents(d)); err != nil {
			ferr = err
			break
		}
		acked[d] = true
		if err := a.CloseDay(ctx, d); err != nil {
			ferr = err
			break
		}
	}
	if ferr == nil {
		t.Fatal("snapshot fault never fired")
	}
	if !plan.Tripped() {
		t.Fatal("stream failed before the failpoint tripped")
	}
	shutdown(t, a)

	b, info, err := Open(shardPersistCfg(shards), PersistConfig{Dir: dir, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	for d := info.ClosedThrough + 1; d <= lastDay; d++ {
		if !acked[d] && info.BufferedEvents[d] == 0 {
			if err := b.Submit(ctx, persistDayEvents(d)); err != nil {
				t.Fatalf("resubmit day %v: %v", d, err)
			}
		}
	}
	if err := b.CloseDay(ctx, lastDay); err != nil {
		t.Fatal(err)
	}
	if got, want := shardStateBytes(t, b), referenceShardState(t, shards, lastDay); !bytes.Equal(got, want) {
		t.Fatal("resumed state differs from uninterrupted run")
	}
}

// TestShardMissingSegmentFailsLoudly: deleting one shard's WAL segment —
// either its whole stream or a middle segment — must fail recovery with a
// history-gap error, never silently serve the surviving shards.
func TestShardMissingSegmentFailsLoudly(t *testing.T) {
	const shards = 3
	build := func(t *testing.T) string {
		dir := t.TempDir()
		a, _, err := Open(shardPersistCfg(shards), PersistConfig{Dir: dir, SegmentBytes: 2048, SnapshotEvery: 1000})
		if err != nil {
			t.Fatal(err)
		}
		feedDays(t, a, 0, 10)
		shutdown(t, a)
		return dir
	}
	t.Run("whole-stream", func(t *testing.T) {
		dir := build(t)
		walDir := filepath.Join(dir, "wal")
		segs, err := listSegments(walDir, walShardPrefix(1))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segments for shard 1 (%v)", err)
		}
		for _, seq := range segs {
			if err := os.Remove(walSegPath(walDir, walShardPrefix(1), seq)); err != nil {
				t.Fatal(err)
			}
		}
		_, _, err = Open(shardPersistCfg(shards), PersistConfig{Dir: dir, SegmentBytes: 2048, SnapshotEvery: 1000})
		if err == nil {
			t.Fatal("recovery with a shard's whole WAL missing succeeded")
		}
		if !strings.Contains(err.Error(), "history gap") {
			t.Fatalf("error = %v, want a history-gap failure", err)
		}
	})
	t.Run("middle-segment", func(t *testing.T) {
		dir := build(t)
		walDir := filepath.Join(dir, "wal")
		segs, err := listSegments(walDir, walShardPrefix(1))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) < 3 {
			t.Fatalf("want ≥3 segments to punch a hole, got %d", len(segs))
		}
		if err := os.Remove(walSegPath(walDir, walShardPrefix(1), segs[len(segs)/2])); err != nil {
			t.Fatal(err)
		}
		_, _, err = Open(shardPersistCfg(shards), PersistConfig{Dir: dir, SegmentBytes: 2048, SnapshotEvery: 1000})
		if err == nil {
			t.Fatal("recovery over a missing middle segment succeeded")
		}
		if !strings.Contains(err.Error(), "history gap") {
			t.Fatalf("error = %v, want a history-gap failure", err)
		}
	})
}

// spanningUsers picks nPer users per shard by probing the ring — the
// fixture testUsers all happen to hash onto ONE shard of 3, which would
// make every batch single-part and a cross-shard atomicity scenario
// vacuous (a single-part batch cannot straddle anything).
func spanningUsers(t *testing.T, shards, nPer int) []string {
	t.Helper()
	r := newRouter(shards)
	need := make([]int, shards)
	for k := range need {
		need[k] = nPer
	}
	var users []string
	for i := 0; len(users) < shards*nPer; i++ {
		if i > 10000 {
			t.Fatal("could not find users spanning every shard")
		}
		u := fmt.Sprintf("w%04d", i)
		if k := r.shardOf(u); need[k] > 0 {
			need[k]--
			users = append(users, u)
		}
	}
	return users
}

// TestShardSnapshotCutBatchAtomicity: a snapshot round must never cut
// through the middle of a cross-shard batch's fan-out — one part baked
// into its shard's snapshot (behind the recorded WAL position) while a
// sibling part lands in another shard's tail would make recovery count
// the batch partial and drop the tail side, half-applying an
// acknowledged batch.
//
// The straddling schedule needs a writer preempted between two part
// sends for exactly the instant the coordinator's snap broadcast runs,
// so stress cannot reach it reliably; instead the test forces the
// schedule: testHookPartSent holds the fan-out open after its first
// part, a full close + snapshot round is given every chance to run
// across the held-open batch, and only then the remaining parts go out.
// With fan-out quiescence the round waits for the batch to finish and
// bakes all of it; without it the round cuts the batch in half, which
// recovery reports as a dropped partial batch and missing events.
func TestShardSnapshotCutBatchAtomicity(t *testing.T) {
	const (
		shards  = 3
		openDay = cert.Day(1000) // never closed: every event stays buffered
	)
	dir := t.TempDir()
	ctx := context.Background()
	users := spanningUsers(t, shards, 2)
	member := make([]int, len(users))
	for i := range member {
		member[i] = i % len(testGroups)
	}
	mkCfg := func() Config {
		return Config{
			Users:      users,
			Groups:     testGroups,
			Membership: member,
			Start:      0,
			Deviation:  testDevCfg(),
			Shards:     shards,
			QueueSize:  4,
		}
	}
	a, _, err := Open(mkCfg(), PersistConfig{Dir: dir, SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Event, 0, 2*len(users)) // one part on every shard
	for i, u := range users {
		at := openDay.Date().Add(time.Duration(8+i%3) * time.Hour)
		batch = append(batch,
			Event{Cert: &cert.Event{Type: cert.EventLogon, Time: at, User: u, Activity: cert.ActLogon}},
			Event{Cert: &cert.Event{Type: cert.EventDevice, Time: at.Add(time.Hour), User: u, PC: fmt.Sprintf("PC-%d", i%4), Activity: cert.ActConnect}},
		)
	}

	paused := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	testHookPartSent = func(int) {
		once.Do(func() {
			close(paused)
			<-release
		})
	}
	t.Cleanup(func() { testHookPartSent = nil })

	subErr := make(chan error, 1)
	go func() { subErr <- a.Submit(ctx, batch) }()
	<-paused // first part is in its shard queue; fan-out is held open

	closeErr := make(chan error, 1)
	go func() { closeErr <- a.CloseDay(ctx, 0) }()
	// Give the close barrier and its snapshot round every chance to run
	// over the held-open batch, then let the fan-out finish. Under
	// quiescence the round is parked right before the snap broadcast
	// until the batch completes; the sleep cannot make this flake — it
	// only bounds how long the broken schedule has to materialize.
	time.Sleep(50 * time.Millisecond)
	close(release)
	if err := <-closeErr; err != nil {
		t.Fatal(err)
	}
	if err := <-subErr; err != nil {
		t.Fatalf("submit: %v", err)
	}
	shutdown(t, a)

	b, info, err := Open(mkCfg(), PersistConfig{Dir: dir, SnapshotEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if !info.SnapshotLoaded || info.SnapshotDay != 0 {
		t.Fatalf("snapshot round never ran (loaded=%v day=%v) — the scenario is vacuous", info.SnapshotLoaded, info.SnapshotDay)
	}
	if info.DroppedPartialBatches != 0 {
		t.Fatalf("recovery dropped %d batches; the batch was acknowledged", info.DroppedPartialBatches)
	}
	if got, want := info.BufferedEvents[openDay], len(batch); got != want {
		t.Fatalf("recovered %d buffered events, want %d (the acknowledged batch whole)", got, want)
	}
	if info.ClosedThrough != 0 {
		t.Fatalf("recovered cut %v, want 0", info.ClosedThrough)
	}
}

// TestShardBatchIDsNoCollisionAcrossRestart: batch IDs must keep rising
// across restarts. Without the manifest's high-water mark, a restart over
// empty WAL tails (a clean shutdown right behind a snapshot) restarted
// IDs at 1; the stale and fresh frames sharing an ID sat on opposite
// sides of the newest cut, and a recovery forced to fall back one
// manifest generation scanned both and died on the part-count conflict —
// an otherwise recoverable directory became unrecoverable.
func TestShardBatchIDsNoCollisionAcrossRestart(t *testing.T) {
	const shards = 3
	ctx := context.Background()
	dir := t.TempDir()
	pc := PersistConfig{Dir: dir, SnapshotEvery: 1}

	a, _, err := Open(shardPersistCfg(shards), pc)
	if err != nil {
		t.Fatal(err)
	}
	// Manifest generation day 0 first, then one batch: its parts land
	// between generation day 0's WAL positions and generation day 1's.
	if err := a.CloseDay(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(ctx, persistDayEvents(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.CloseDay(ctx, 1); err != nil {
		t.Fatal(err)
	}
	shutdown(t, a)

	// Restart over empty tails; numbering must continue past every ID the
	// first boot issued.
	b, _, err := Open(shardPersistCfg(shards), pc)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.nextBatch.Load(); got < 1 {
		t.Fatalf("recovered nextBatch = %d, want ≥ 1 (the first boot's high-water mark)", got)
	}
	if err := b.Submit(ctx, persistDayEvents(2)); err != nil {
		t.Fatal(err)
	}
	shutdown(t, b)

	// Corrupt the newest manifest: recovery falls back to generation day
	// 0 and scans tails holding both boots' frames. With colliding IDs
	// this scan used to fail with a part-count conflict.
	data, err := os.ReadFile(manifestPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(manifestPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}

	c, info, err := Open(shardPersistCfg(shards), pc)
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	defer shutdown(t, c)
	if !info.SnapshotLoaded || info.SnapshotDay != 0 {
		t.Fatalf("fell back to snapshot day %v (loaded=%v), want day 0", info.SnapshotDay, info.SnapshotLoaded)
	}
	if info.DroppedPartialBatches != 0 {
		t.Fatalf("fallback recovery dropped %d complete batches", info.DroppedPartialBatches)
	}
	if info.ClosedThrough != 1 {
		t.Fatalf("recovered ClosedThrough = %v, want 1", info.ClosedThrough)
	}
	if got, want := info.BufferedEvents[2], len(persistDayEvents(2)); got != want {
		t.Fatalf("recovered %d buffered events for day 2, want %d", got, want)
	}
}

// TestShardLayoutMismatchFailsLoudly: opening a data directory with the
// wrong shard count — in either direction, or with a count that disagrees
// with the manifests — must be a loud configuration error.
func TestShardLayoutMismatchFailsLoudly(t *testing.T) {
	t.Run("sharded-dir-unsharded-config", func(t *testing.T) {
		dir := t.TempDir()
		a, _, err := Open(shardPersistCfg(3), PersistConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		feedDays(t, a, 0, 3)
		shutdown(t, a)
		if _, _, err := Open(shardPersistCfg(1), PersistConfig{Dir: dir}); err == nil {
			t.Fatal("unsharded open of a sharded directory succeeded")
		}
	})
	t.Run("unsharded-dir-sharded-config", func(t *testing.T) {
		dir := t.TempDir()
		a, _, err := Open(shardPersistCfg(1), PersistConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		feedDays(t, a, 0, 3)
		shutdown(t, a)
		if _, _, err := Open(shardPersistCfg(3), PersistConfig{Dir: dir}); err == nil {
			t.Fatal("sharded open of an unsharded directory succeeded")
		}
	})
	t.Run("manifest-shard-count-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		a, _, err := Open(shardPersistCfg(3), PersistConfig{Dir: dir, SnapshotEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		feedDays(t, a, 0, 5) // publishes at least one manifest
		shutdown(t, a)
		if _, _, err := Open(shardPersistCfg(4), PersistConfig{Dir: dir, SnapshotEvery: 2}); err == nil {
			t.Fatal("open with a different shard count than the manifest succeeded")
		}
	})
}
