package serve

import (
	"context"
	"sync"
	"testing"

	"acobe/internal/cert"
)

// TestConcurrentRankDuringRetrain hammers Rank — the batched scoring
// path with its pooled per-goroutine scorers — while retrains swap a
// freshly trained detector underneath. Under `make test-race` this is
// the regression net for the scorer-pool / model-swap interaction: a
// pooled scorer outliving its model, or a swap racing a running batch,
// shows up here as a data race or a failed query.
func TestConcurrentRankDuringRetrain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains ensembles")
	}
	ctx := context.Background()
	srv := newTestServer(t, newStubIngestor(t, 0), 16)
	for d := cert.Day(0); d <= 55; d++ {
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Retrain(ctx, 0, 40, true); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.Rank(ctx, 45, 55); err != nil {
					t.Errorf("rank during retrain: %v", err)
					return
				}
			}
		}()
	}
	// Two model swaps while the rankers hammer the query path.
	for i := 0; i < 2; i++ {
		if err := srv.Retrain(ctx, 0, cert.Day(45+5*i), true); err != nil {
			t.Errorf("retrain %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
