package serve

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/persist"
)

// FuzzShardRouter throws arbitrary user IDs and shard counts at the
// consistent-hash router. The contract: never panic, always return a shard
// in range, and be a pure function of (user, shard count) — the same
// router and a rebuilt one must agree, because recovery rebuilds the ring
// from scratch and must route every replayed user to the shard that logged
// it.
func FuzzShardRouter(f *testing.F) {
	f.Add("u1", 1)
	f.Add("u1", 3)
	f.Add("", 8)
	f.Add("DTAA/ABC0001", 16)
	f.Add("\x00\xff weird\tuser\n", 5)
	f.Fuzz(func(t *testing.T, user string, n int) {
		if n < 1 || n > 64 {
			n = 1 + (n&0x7fffffff)%64
		}
		r := newRouter(n)
		k := r.shardOf(user)
		if k < 0 || k >= n {
			t.Fatalf("shardOf(%q) with %d shards = %d, out of range", user, n, k)
		}
		if k2 := r.shardOf(user); k2 != k {
			t.Fatalf("shardOf(%q) not deterministic: %d then %d", user, k, k2)
		}
		if k2 := newRouter(n).shardOf(user); k2 != k {
			t.Fatalf("rebuilt router routes %q to %d, original to %d", user, k2, k)
		}
		if n == 1 && k != 0 {
			t.Fatalf("single-shard router sent %q to shard %d", user, k)
		}
	})
}

// fuzzManifestSeed encodes a valid manifest image.
func fuzzManifestSeed(shards int, day cert.Day, hwm uint64) []byte {
	var body bytes.Buffer
	pw := persist.NewWriter(&body)
	pw.Magic(manifestMagic, manifestVersion)
	pw.Int(shards)
	pw.I64(int64(day))
	pw.U64(hwm)
	pw.Magic(manifestMagic, manifestVersion)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(body.Bytes()))
	return append(body.Bytes(), sum[:]...)
}

// FuzzManifestDecode throws arbitrary bytes at the manifest decoder — the
// first thing sharded recovery reads from disk. It must never panic, and
// anything it accepts must survive an exact re-encode/re-decode round trip
// (the decoder's acceptance set is exactly the encoder's image).
func FuzzManifestDecode(f *testing.F) {
	f.Add(fuzzManifestSeed(3, 29, 0))
	f.Add(fuzzManifestSeed(1, 0, 7))
	f.Add(fuzzManifestSeed(8, 1<<40, 1<<50))
	good := fuzzManifestSeed(4, 100, 12)
	torn := good[:len(good)-3]
	f.Add(torn)
	flipped := bytes.Clone(good)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("ACMF"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		if m.shards < 1 {
			t.Fatalf("decoder accepted %d shards", m.shards)
		}
		if m.version != manifestVersion {
			// Audit manifests carry a signature; round-tripping them needs
			// the signing key, which the v1 seed encoder does not have.
			return
		}
		re := fuzzManifestSeed(m.shards, m.day, m.batchHWM)
		m2, err := decodeManifest(re)
		if err != nil || m2.shards != m.shards || m2.day != m.day || m2.batchHWM != m.batchHWM {
			t.Fatalf("round trip of accepted manifest (%d, %v, %d) failed: (%d, %v, %d, %v)",
				m.shards, m.day, m.batchHWM, m2.shards, m2.day, m2.batchHWM, err)
		}
	})
}
