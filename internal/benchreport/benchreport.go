// Package benchreport reads and writes the repo's BENCH_*.json files as
// named top-level sections. Multiple writers own different sections of
// one file (cmd/repro -bench-serve owns "benchmarks" and
// "observer_overhead" in BENCH_serve.json; cmd/acobeload owns
// "acobeload"): each loads the file, replaces only its own sections, and
// saves — every section it does not own survives byte-for-byte as raw
// JSON.
package benchreport

import (
	"encoding/json"
	"fmt"
	"os"
)

// Load parses path into its top-level sections. A missing file is an
// empty report, not an error.
func Load(path string) (map[string]json.RawMessage, error) {
	sections := make(map[string]json.RawMessage)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return sections, nil
	}
	if err != nil {
		return nil, fmt.Errorf("benchreport: %w", err)
	}
	if err := json.Unmarshal(raw, &sections); err != nil {
		return nil, fmt.Errorf("benchreport: parse %s: %w", path, err)
	}
	return sections, nil
}

// Set marshals v into the named section.
func Set(sections map[string]json.RawMessage, name string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("benchreport: encode section %s: %w", name, err)
	}
	sections[name] = raw
	return nil
}

// Get unmarshals the named section into v; a missing section leaves v
// untouched and returns false.
func Get(sections map[string]json.RawMessage, name string, v any) (bool, error) {
	raw, ok := sections[name]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("benchreport: parse section %s: %w", name, err)
	}
	return true, nil
}

// Save writes the sections to path, indented, keys in sorted order.
func Save(path string, sections map[string]json.RawMessage) error {
	out, err := json.MarshalIndent(sections, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return fmt.Errorf("benchreport: %w", err)
	}
	return nil
}
