package benchreport

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestSectionOwnershipRoundTrip pins the multi-writer contract: a writer
// replacing one section must leave every other section byte-identical.
func TestSectionOwnershipRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")

	first, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 0 {
		t.Fatalf("missing file loaded %d sections", len(first))
	}
	foreign := json.RawMessage(`{"nested":{"k":[1,2,3]},"s":"v"}`)
	first["foreign"] = foreign
	if err := Set(first, "mine", map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}

	second, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Set(second, "mine", map[string]int{"a": 2}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}

	third, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustCompact(t, third["foreign"]), mustCompact(t, foreign)) {
		t.Fatalf("foreign section changed: %s", third["foreign"])
	}
	var mine map[string]int
	if ok, err := Get(third, "mine", &mine); err != nil || !ok || mine["a"] != 2 {
		t.Fatalf("owned section = %v ok=%v err=%v", mine, ok, err)
	}
	if ok, err := Get(third, "absent", &mine); err != nil || ok {
		t.Fatalf("absent section: ok=%v err=%v", ok, err)
	}
}

func mustCompact(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
