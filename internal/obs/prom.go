package obs

import (
	"fmt"
	"io"
	"math"
)

// Gauges carries the live values the server owns and the observer cannot
// see; the /metrics handler fills it at scrape time.
type Gauges struct {
	Users          int
	Shards         int
	ClosedThrough  int64
	Fitted         bool
	Retraining     bool
	PersistEnabled bool
}

// WritePrometheus renders one scrape in the Prometheus text exposition
// format (version 0.0.4): each stage as a native histogram in seconds,
// the counters, and per-shard gauge/counter families labeled by shard.
func WritePrometheus(w io.Writer, snap *Snapshot, g Gauges) error {
	if snap == nil {
		_, err := fmt.Fprintln(w, "# observer disabled")
		return err
	}
	b := &errWriter{w: w}

	b.printf("# HELP acobe_uptime_seconds Seconds since the observer was created.\n")
	b.printf("# TYPE acobe_uptime_seconds gauge\n")
	b.printf("acobe_uptime_seconds %g\n", snap.UptimeSeconds)
	b.printf("# HELP acobe_users Configured scored users.\n# TYPE acobe_users gauge\nacobe_users %d\n", g.Users)
	b.printf("# HELP acobe_shards Configured state shards.\n# TYPE acobe_shards gauge\nacobe_shards %d\n", g.Shards)
	b.printf("# HELP acobe_closed_through_day Last closed (extracted and merged) day index.\n# TYPE acobe_closed_through_day gauge\nacobe_closed_through_day %d\n", g.ClosedThrough)
	b.printf("# HELP acobe_fitted Whether a trained model is serving (1) or not (0).\n# TYPE acobe_fitted gauge\nacobe_fitted %d\n", boolGauge(g.Fitted))
	b.printf("# HELP acobe_retraining Whether a retrain is running.\n# TYPE acobe_retraining gauge\nacobe_retraining %d\n", boolGauge(g.Retraining))
	b.printf("# HELP acobe_persistence_enabled Whether the WAL/snapshot layer is on.\n# TYPE acobe_persistence_enabled gauge\nacobe_persistence_enabled %d\n", boolGauge(g.PersistEnabled))

	for _, c := range snap.Counters {
		// Most counter rows are monotonic; the last-value ones are gauges.
		typ := "counter"
		if c.Name == CounterLastSnapshotDay || c.Name == CounterMergePendingDays {
			typ = "gauge"
		}
		b.printf("# TYPE acobe_%s %s\n", c.Name, typ)
		b.printf("acobe_%s %d\n", c.Name, c.Value)
	}

	b.printf("# HELP acobe_stage_duration_seconds Per-stage latency of the serve pipeline.\n")
	b.printf("# TYPE acobe_stage_duration_seconds histogram\n")
	for _, st := range snap.Stages {
		h := st.Hist()
		cum := uint64(0)
		for i, n := range h.Buckets {
			cum += n
			// Bucket i's inclusive upper bound: just under 2^i ns; 2^i/1e9
			// seconds is the conventional le edge.
			le := math.Ldexp(1, i) / 1e9
			if i == 0 {
				le = 1e-9
			}
			b.printf("acobe_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n", st.Stage, formatLE(le), cum)
		}
		b.printf("acobe_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st.Stage, h.Count)
		b.printf("acobe_stage_duration_seconds_sum{stage=%q} %g\n", st.Stage, float64(h.SumNanos)/1e9)
		b.printf("acobe_stage_duration_seconds_count{stage=%q} %d\n", st.Stage, h.Count)
	}

	shardRow := func(name, help string, val func(ShardSnapshot) int64, typ string) {
		b.printf("# HELP acobe_shard_%s %s\n# TYPE acobe_shard_%s %s\n", name, help, name, typ)
		for _, sh := range snap.Shards {
			b.printf("acobe_shard_%s{shard=\"%d\"} %d\n", name, sh.Shard, val(sh))
		}
	}
	shardRow("users", "Users owned by the shard.", func(s ShardSnapshot) int64 { return int64(s.Users) }, "gauge")
	shardRow("queue_depth", "Batches waiting in the shard's ingest queue.", func(s ShardSnapshot) int64 { return int64(s.QueueDepth) }, "gauge")
	shardRow("queue_high_water", "Highest ingest queue depth seen since start.", func(s ShardSnapshot) int64 { return s.QueueHWM }, "gauge")
	shardRow("ingested_events_total", "Fresh events applied by the shard.", func(s ShardSnapshot) int64 { return s.Ingested }, "counter")
	shardRow("late_events_total", "Events dropped for arriving after their day closed.", func(s ShardSnapshot) int64 { return s.Late }, "counter")
	shardRow("wal_bytes_total", "Bytes appended to the shard's WAL (frame overhead included).", func(s ShardSnapshot) int64 { return s.WALBytes }, "counter")
	shardRow("wal_frames_total", "Frames appended to the shard's WAL.", func(s ShardSnapshot) int64 { return s.WALFrames }, "counter")
	shardRow("wal_fsyncs_total", "WAL fsyncs issued by the shard.", func(s ShardSnapshot) int64 { return s.WALFsyncs }, "counter")
	return b.err
}

// formatLE renders a bucket edge compactly and stably (%g).
func formatLE(v float64) string { return fmt.Sprintf("%g", v) }

func boolGauge(v bool) int {
	if v {
		return 1
	}
	return 0
}

// errWriter latches the first write error so the exposition loop stays
// uncluttered.
type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) printf(format string, args ...any) {
	if b.err != nil {
		return
	}
	_, b.err = fmt.Fprintf(b.w, format, args...)
}
