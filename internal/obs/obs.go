// Package obs is the serving daemon's per-stage instrumentation: atomic
// counters and fixed-bucket log-scale latency histograms cheap enough to
// sit on the ingest hot path. The design goals, in order:
//
//   - Allocation-free recording. Observe and Add are a handful of atomic
//     adds on fixed-layout arrays — no maps, no interfaces, no time
//     formatting — so instrumented code benchmarks with 0 allocs/op added
//     and single-digit-nanosecond-per-atomic cost (BenchmarkObserve pins
//     the number).
//   - Nil-safe hooks. Every recording method no-ops on a nil receiver, so
//     a server built without an Observer pays one predictable branch per
//     hook and zero clock reads (Clock returns the zero Time, which the
//     paired Observe* method treats as "disabled").
//   - Mergeable across shards. Each shard records into its own ShardStats
//     cell; a scrape snapshots every cell and folds the histograms
//     together with plain addition, so per-shard recording never contends
//     and the merged view counts every event exactly once.
//
// The scrape path (Snapshot, WritePrometheus) allocates freely — it runs
// a few times a minute, not per event.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count. Bucket 0 holds zero-duration
// observations; bucket i (i ≥ 1) holds durations in [2^(i-1), 2^i) ns.
// Bucket 39 tops out at ~9.1 minutes and absorbs everything longer.
const histBuckets = 40

// Histogram is a fixed-layout log2-bucket latency histogram. The zero
// value is ready to use; all methods are safe for concurrent use and a
// nil *Histogram no-ops.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	i := bits.Len64(ns)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Snapshot copies the histogram's current state. The copy is not an
// atomic cut across buckets — a scrape racing an Observe may see the
// bucket but not yet the sum — which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	s.MaxNanos = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, the unit the
// scrape layer merges and summarizes.
type HistogramSnapshot struct {
	Count    uint64
	SumNanos uint64
	MaxNanos uint64
	Buckets  [histBuckets]uint64
}

// Merge folds another snapshot into s (plain addition per bucket; max of
// maxes). Merging the per-shard histograms of one stage yields the
// stage's global histogram with every observation counted exactly once.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumNanos += o.SumNanos
	if o.MaxNanos > s.MaxNanos {
		s.MaxNanos = o.MaxNanos
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// bucketBounds returns bucket i's half-open duration range [lo, hi) in
// nanoseconds.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// inside the bucket the rank falls in. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := bucketBounds(i)
			// The top bucket absorbs everything past the fixed range; its
			// real upper edge is the observed max.
			if i == histBuckets-1 && float64(s.MaxNanos) > lo {
				hi = float64(s.MaxNanos)
			}
			frac := (rank - cum) / float64(n)
			est := lo + frac*(hi-lo)
			if m := float64(s.MaxNanos); est > m && m > 0 {
				est = m
			}
			return time.Duration(est)
		}
		cum = next
	}
	return time.Duration(s.MaxNanos)
}

// Mean returns the average observed duration.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(float64(s.SumNanos) / float64(s.Count))
}

// Stage names, used as the histogram label in every exposition format.
// They are stable API: dashboards key on them.
const (
	StageSubmit       = "ingest_submit"  // Submit end to end: validate + enqueue + WAL ack
	StageEnqueue      = "ingest_enqueue" // time blocked on a full shard queue (backpressure)
	StageApply        = "ingest_apply"   // per-shard batch drain: late filter + WAL append + buffer
	StageClose        = "day_close"      // day-close barrier end to end, caller-observed
	StageMerge        = "close_merge"    // one closed day built into the shadow view, off-lock (Shards>1)
	StageMergePublish = "merge_publish"  // publishing a merged generation: the write-lock pointer swap
	StageSnapshot     = "snapshot"       // one snapshot publication (per shard round when sharded)
	StageRank         = "rank"           // one ranked-list query
	StageRetrain      = "retrain"        // one full retrain: clone + fit + swap
	StageRetrainClone = "retrain_clone"  // the deviation-field clone a retrain starts from
	StageWALFsync     = "wal_fsync"      // one WAL fsync (per shard)
	StageWALHash      = "wal_hash"       // audit hashing per WAL append: Merkle leaves + root + chain fold (per shard)
)

// stageOrder fixes the exposition order of the stage histograms.
var stageOrder = []string{
	StageSubmit, StageEnqueue, StageApply, StageClose, StageMerge, StageMergePublish,
	StageSnapshot, StageRank, StageRetrain, StageRetrainClone, StageWALFsync, StageWALHash,
}

// Counter names exposed in Snapshot.Counters and /metrics.
const (
	CounterEventsSubmitted  = "events_submitted_total"
	CounterBatchesSubmitted = "batches_submitted_total"
	CounterDayCloses        = "day_closes_total"
	CounterSnapshots        = "snapshots_total"
	CounterLastSnapshotDay  = "last_snapshot_day"
	CounterRetrains         = "retrains_total"
	CounterRetrainFailures  = "retrain_failures_total"
	// CounterMergePendingDays is a last-value gauge: closed days built (or
	// waiting to be built) into the shadow view but not yet published.
	CounterMergePendingDays = "merge_pending_days"
)

// ShardStats is one shard's private recording cell. The owning shard
// goroutine (and the WAL appender it owns) writes it without contention;
// scrapes read it atomically. A nil *ShardStats no-ops every method.
type ShardStats struct {
	Apply Histogram // per-batch apply latency on this shard
	Fsync Histogram // WAL fsync latency on this shard
	Hash  Histogram // audit hashing per WAL append on this shard

	queueHWM  atomic.Int64
	walBytes  atomic.Int64
	walFrames atomic.Int64
	walFsyncs atomic.Int64
}

// NoteQueueDepth raises the shard's queue high-water mark to depth.
func (ss *ShardStats) NoteQueueDepth(depth int) {
	if ss == nil {
		return
	}
	d := int64(depth)
	for {
		cur := ss.queueHWM.Load()
		if d <= cur || ss.queueHWM.CompareAndSwap(cur, d) {
			return
		}
	}
}

// AddWALAppend records one appended frame of n bytes.
func (ss *ShardStats) AddWALAppend(n int) {
	if ss == nil {
		return
	}
	ss.walBytes.Add(int64(n))
	ss.walFrames.Add(1)
}

// ObserveFsync records one WAL fsync and its duration.
func (ss *ShardStats) ObserveFsync(start time.Time) {
	if ss == nil || start.IsZero() {
		return
	}
	ss.walFsyncs.Add(1)
	ss.Fsync.Observe(time.Since(start))
}

// ObserveWALHash records one append's audit hashing (Merkle leaves +
// root + chain fold) and its duration.
func (ss *ShardStats) ObserveWALHash(start time.Time) {
	if ss == nil || start.IsZero() {
		return
	}
	ss.Hash.Observe(time.Since(start))
}

// ObserveApply records one batch apply.
func (ss *ShardStats) ObserveApply(start time.Time) {
	if ss == nil || start.IsZero() {
		return
	}
	ss.Apply.Observe(time.Since(start))
}

// Observer is one server's instrumentation root: global per-stage
// histograms and counters, plus one ShardStats cell per shard. Create it
// with NewObserver, hand it to the server's config, and scrape it through
// the server (which overlays live gauges the observer cannot see, like
// instantaneous queue depths).
//
// An Observer belongs to one server at a time: per-shard cells are sized
// by the server on startup, and counters accumulate across a recovery's
// core rebuilds (recovery work is real work).
type Observer struct {
	start time.Time

	submit       Histogram
	enqueue      Histogram
	close        Histogram
	merge        Histogram
	mergePublish Histogram
	snapshot     Histogram
	rank         Histogram
	retrain      Histogram
	retrainClone Histogram

	eventsSubmitted  atomic.Int64
	batchesSubmitted atomic.Int64
	dayCloses        atomic.Int64
	snapshots        atomic.Int64
	lastSnapshotDay  atomic.Int64
	retrains         atomic.Int64
	retrainFailures  atomic.Int64
	pendingMergeDays atomic.Int64

	mu     sync.Mutex
	shards []*ShardStats
}

// NewObserver returns an empty observer; uptime counts from here.
func NewObserver() *Observer {
	return &Observer{start: time.Now()}
}

// Clock returns the current time when the observer is active and the zero
// Time otherwise, so disabled servers skip the clock read entirely. Every
// Observe* method treats a zero start as "disabled".
func (o *Observer) Clock() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// ShardStats returns shard k's recording cell, sizing the per-shard table
// to n cells on first use. Cells persist across calls (and across a
// recovery's core rebuilds) so counters are never silently reset.
func (o *Observer) ShardStats(k, n int) *ShardStats {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for len(o.shards) < n {
		o.shards = append(o.shards, &ShardStats{})
	}
	if k < 0 || k >= len(o.shards) {
		return nil
	}
	return o.shards[k]
}

// ObserveSubmit records one accepted Submit call of n events.
func (o *Observer) ObserveSubmit(start time.Time, events int) {
	if o == nil || start.IsZero() {
		return
	}
	o.submit.Observe(time.Since(start))
	o.batchesSubmitted.Add(1)
	o.eventsSubmitted.Add(int64(events))
}

// ObserveEnqueue records time spent blocked on a full queue.
func (o *Observer) ObserveEnqueue(start time.Time) {
	if o == nil || start.IsZero() {
		return
	}
	o.enqueue.Observe(time.Since(start))
}

// ObserveClose records one day-close barrier, caller-observed.
func (o *Observer) ObserveClose(start time.Time) {
	if o == nil || start.IsZero() {
		return
	}
	o.close.Observe(time.Since(start))
	o.dayCloses.Add(1)
}

// ObserveMerge records one closed day's cross-shard merge.
func (o *Observer) ObserveMerge(start time.Time) {
	if o == nil || start.IsZero() {
		return
	}
	o.merge.Observe(time.Since(start))
}

// ObserveMergePublish records one generation publication — the write-lock
// critical section that swaps the shadow view in (detector rebind +
// pointer flip).
func (o *Observer) ObserveMergePublish(start time.Time) {
	if o == nil || start.IsZero() {
		return
	}
	o.mergePublish.Observe(time.Since(start))
}

// SetPendingMergeDays sets the merge_pending_days gauge: closed days not
// yet visible to ranks because their generation has not been published.
func (o *Observer) SetPendingMergeDays(n int64) {
	if o == nil {
		return
	}
	o.pendingMergeDays.Store(n)
}

// ObserveSnapshot records one completed snapshot (a full round when
// sharded) and the day it cut at.
func (o *Observer) ObserveSnapshot(start time.Time, day int64) {
	if o == nil || start.IsZero() {
		return
	}
	o.snapshot.Observe(time.Since(start))
	o.snapshots.Add(1)
	o.lastSnapshotDay.Store(day)
}

// ObserveRank records one ranked-list query.
func (o *Observer) ObserveRank(start time.Time) {
	if o == nil || start.IsZero() {
		return
	}
	o.rank.Observe(time.Since(start))
}

// ObserveRetrain records one finished retrain attempt.
func (o *Observer) ObserveRetrain(start time.Time, err error) {
	if o == nil || start.IsZero() {
		return
	}
	o.retrain.Observe(time.Since(start))
	o.retrains.Add(1)
	if err != nil {
		o.retrainFailures.Add(1)
	}
}

// ObserveRetrainClone records the deviation-field clone a retrain makes
// under the read lock — the visible cost of the sharded design's
// merge-then-clone training path.
func (o *Observer) ObserveRetrainClone(start time.Time) {
	if o == nil || start.IsZero() {
		return
	}
	o.retrainClone.Observe(time.Since(start))
}
