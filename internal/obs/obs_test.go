package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamps to 0
	h.Observe(100 * time.Nanosecond)
	h.Observe(1 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if want := uint64(100 + 1e6); s.SumNanos != want {
		t.Fatalf("sum = %d, want %d", s.SumNanos, want)
	}
	if s.MaxNanos != 1e6 {
		t.Fatalf("max = %d, want 1e6", s.MaxNanos)
	}
	// Two zeros land in bucket 0.
	if s.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2", s.Buckets[0])
	}
}

func TestHistogramQuantileBrackets(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	if p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 512*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1ms", p99)
	}
	if q1 := s.Quantile(1); q1 != time.Duration(s.MaxNanos) {
		t.Fatalf("q(1) = %v, want max %v", q1, time.Duration(s.MaxNanos))
	}
}

func TestHistogramClampsOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(24 * time.Hour)
	s := h.Snapshot()
	if s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("huge value not in top bucket: %+v", s.Buckets)
	}
	// The overflow bucket's real upper edge is the observed max: the
	// estimate must land between the bucket's floor and the max.
	if q := s.Quantile(0.5); q < time.Duration(1)<<38 || q > time.Duration(s.MaxNanos) {
		t.Fatalf("overflow quantile %v outside [2^38ns, max]", q)
	}
	if q := s.Quantile(1); q != time.Duration(s.MaxNanos) {
		t.Fatalf("q(1) = %v, want max", q)
	}
}

func TestHistogramMergeCountsOnce(t *testing.T) {
	hs := make([]Histogram, 3)
	total := 0
	for i := range hs {
		for j := 0; j <= i*10; j++ {
			hs[i].Observe(time.Duration(j) * time.Microsecond)
			total++
		}
	}
	var merged HistogramSnapshot
	for i := range hs {
		merged.Merge(hs[i].Snapshot())
	}
	if merged.Count != uint64(total) {
		t.Fatalf("merged count = %d, want %d", merged.Count, total)
	}
	var bucketSum uint64
	for _, n := range merged.Buckets {
		bucketSum += n
	}
	if bucketSum != merged.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, merged.Count)
	}
}

// TestNilSafety proves every hook no-ops on a nil receiver — a server
// built without an observer must never panic or pay for recording.
func TestNilSafety(t *testing.T) {
	var o *Observer
	var ss *ShardStats
	var h *Histogram
	start := o.Clock()
	if !start.IsZero() {
		t.Fatal("nil observer clock should be zero")
	}
	h.Observe(time.Second)
	o.ObserveSubmit(start, 5)
	o.ObserveSubmit(time.Now(), 5) // zero-guard is on start, nil-guard on o
	o.ObserveEnqueue(start)
	o.ObserveClose(start)
	o.ObserveMerge(start)
	o.ObserveSnapshot(start, 3)
	o.ObserveRank(start)
	o.ObserveRetrain(start, nil)
	o.ObserveRetrainClone(start)
	ss.NoteQueueDepth(4)
	ss.AddWALAppend(128)
	ss.ObserveFsync(start)
	ss.ObserveApply(start)
	if o.Snapshot() != nil {
		t.Fatal("nil observer snapshot should be nil")
	}
	if o.ShardStats(0, 4) != nil {
		t.Fatal("nil observer shard stats should be nil")
	}
}

// TestZeroStartSkips proves a zero start time (what Clock returns when
// disabled) records nothing even on a live observer.
func TestZeroStartSkips(t *testing.T) {
	o := NewObserver()
	o.ObserveSubmit(time.Time{}, 100)
	o.ObserveRank(time.Time{})
	snap := o.Snapshot()
	if n := snap.Counter(CounterEventsSubmitted); n != 0 {
		t.Fatalf("events counted from zero start: %d", n)
	}
	if c := snap.Stage(StageRank).Count; c != 0 {
		t.Fatalf("rank observed from zero start: %d", c)
	}
}

func TestObserverSnapshotAndCounters(t *testing.T) {
	o := NewObserver()
	for k := 0; k < 3; k++ {
		ss := o.ShardStats(k, 3)
		ss.ObserveApply(time.Now().Add(-time.Millisecond))
		ss.AddWALAppend(100 * (k + 1))
		ss.NoteQueueDepth(k + 1)
		ss.NoteQueueDepth(k) // lower: must not regress the HWM
	}
	o.ObserveSubmit(time.Now().Add(-time.Microsecond), 42)
	o.ObserveRetrain(time.Now().Add(-time.Second), fmt.Errorf("boom"))
	snap := o.Snapshot()
	if got := snap.Counter(CounterEventsSubmitted); got != 42 {
		t.Fatalf("events_submitted = %d, want 42", got)
	}
	if got := snap.Counter(CounterRetrainFailures); got != 1 {
		t.Fatalf("retrain_failures = %d, want 1", got)
	}
	if got := snap.Stage(StageApply).Count; got != 3 {
		t.Fatalf("merged apply count = %d, want 3", got)
	}
	if len(snap.Shards) != 3 {
		t.Fatalf("shard rows = %d, want 3", len(snap.Shards))
	}
	for k, sh := range snap.Shards {
		if sh.WALBytes != int64(100*(k+1)) || sh.WALFrames != 1 {
			t.Fatalf("shard %d wal = %+v", k, sh)
		}
		if sh.QueueHWM != int64(k+1) {
			t.Fatalf("shard %d hwm = %d, want %d", k, sh.QueueHWM, k+1)
		}
	}
	// ShardStats is idempotent: same cells, counters preserved.
	if o.ShardStats(1, 3) != o.ShardStats(1, 3) {
		t.Fatal("shard cell not stable across calls")
	}
}

func TestWritePrometheus(t *testing.T) {
	o := NewObserver()
	o.ShardStats(0, 2).AddWALAppend(64)
	o.ObserveSubmit(time.Now().Add(-time.Millisecond), 7)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, o.Snapshot(), Gauges{Users: 5, Shards: 2, ClosedThrough: 9, Fitted: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wants := []string{
		"acobe_users 5",
		"acobe_shards 2",
		"acobe_closed_through_day 9",
		"acobe_fitted 1",
		"acobe_events_submitted_total 7",
		`acobe_stage_duration_seconds_bucket{stage="ingest_submit",le="+Inf"} 1`,
		`acobe_stage_duration_seconds_count{stage="ingest_submit"} 1`,
		`acobe_shard_wal_bytes_total{shard="0"} 64`,
		`acobe_shard_wal_bytes_total{shard="1"} 0`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at the count.
	if !strings.Contains(out, "# TYPE acobe_stage_duration_seconds histogram") {
		t.Fatal("missing histogram TYPE line")
	}
	// Nil snapshot degrades gracefully.
	buf.Reset()
	if err := WritePrometheus(&buf, nil, Gauges{}); err != nil || !strings.Contains(buf.String(), "disabled") {
		t.Fatalf("nil snapshot exposition: %v %q", err, buf.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

// TestObserveAllocFree pins the hot-path contract: recording allocates
// nothing.
func TestObserveAllocFree(t *testing.T) {
	o := NewObserver()
	ss := o.ShardStats(0, 1)
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		o.ObserveSubmit(start, 10)
		o.ObserveEnqueue(start)
		ss.ObserveApply(start)
		ss.AddWALAppend(512)
		ss.NoteQueueDepth(3)
	})
	if allocs != 0 {
		t.Fatalf("recording allocates %v per run, want 0", allocs)
	}
}

// BenchmarkObserve pins the per-hook cost of one histogram record — the
// number DESIGN.md §13 quotes for overhead methodology.
func BenchmarkObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

// BenchmarkObserveSubmit is the full submit-side hook: one clock read plus
// histogram and two counters.
func BenchmarkObserveSubmit(b *testing.B) {
	o := NewObserver()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.ObserveSubmit(o.Clock(), 10)
	}
}
