package obs

import (
	"time"
)

// StageStats summarizes one stage's merged histogram for the JSON status
// surface: flat, CSV-friendly numbers (the full bucket layout rides along
// for the Prometheus exposition).
type StageStats struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`

	hist HistogramSnapshot
}

// Counter is one named monotonic (or last-value) counter.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// ShardSnapshot is one shard's scrape row. The observer fills the fields
// it records (queue high-water mark, WAL traffic); the server overlays
// the live gauges it owns (queue depth, ingested/late counts, user
// count) before handing the snapshot out.
type ShardSnapshot struct {
	Shard      int   `json:"shard"`
	Users      int   `json:"users"`
	QueueDepth int   `json:"queue_depth"`
	QueueHWM   int64 `json:"queue_hwm"`
	Ingested   int64 `json:"ingested"`
	Late       int64 `json:"late"`
	WALBytes   int64 `json:"wal_bytes"`
	WALFrames  int64 `json:"wal_frames"`
	WALFsyncs  int64 `json:"wal_fsyncs"`
}

// Snapshot is one point-in-time scrape of an Observer: the JSON payload
// embedded in /v1/status and the source the Prometheus exposition renders
// from. Stage histograms are already merged across shards.
type Snapshot struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Stages        []StageStats    `json:"stages"`
	Counters      []Counter       `json:"counters"`
	Shards        []ShardSnapshot `json:"shards"`
}

// summarize converts a merged histogram into its flat stage row.
func summarize(stage string, h HistogramSnapshot) StageStats {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return StageStats{
		Stage:  stage,
		Count:  h.Count,
		MeanUS: us(h.Mean()),
		P50US:  us(h.Quantile(0.50)),
		P90US:  us(h.Quantile(0.90)),
		P99US:  us(h.Quantile(0.99)),
		MaxUS:  float64(h.MaxNanos) / 1e3,
		hist:   h,
	}
}

// Hist exposes the stage's merged histogram snapshot (for expositions
// that need the full bucket layout, and for tests).
func (s StageStats) Hist() HistogramSnapshot { return s.hist }

// Snapshot scrapes the observer: global stage histograms, the per-shard
// Apply/Fsync histograms merged into their stage rows, counters, and one
// row per shard. Returns nil on a nil observer. The scrape is not one
// atomic cut — concurrent recording may land between field reads — which
// is the standard monitoring trade.
func (o *Observer) Snapshot() *Snapshot {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	shards := append([]*ShardStats(nil), o.shards...)
	o.mu.Unlock()

	var apply, fsync, walHash HistogramSnapshot
	rows := make([]ShardSnapshot, len(shards))
	for i, ss := range shards {
		apply.Merge(ss.Apply.Snapshot())
		fsync.Merge(ss.Fsync.Snapshot())
		walHash.Merge(ss.Hash.Snapshot())
		rows[i] = ShardSnapshot{
			Shard:     i,
			QueueHWM:  ss.queueHWM.Load(),
			WALBytes:  ss.walBytes.Load(),
			WALFrames: ss.walFrames.Load(),
			WALFsyncs: ss.walFsyncs.Load(),
		}
	}

	byStage := map[string]HistogramSnapshot{
		StageSubmit:       o.submit.Snapshot(),
		StageEnqueue:      o.enqueue.Snapshot(),
		StageApply:        apply,
		StageClose:        o.close.Snapshot(),
		StageMerge:        o.merge.Snapshot(),
		StageMergePublish: o.mergePublish.Snapshot(),
		StageSnapshot:     o.snapshot.Snapshot(),
		StageRank:         o.rank.Snapshot(),
		StageRetrain:      o.retrain.Snapshot(),
		StageRetrainClone: o.retrainClone.Snapshot(),
		StageWALFsync:     fsync,
		StageWALHash:      walHash,
	}
	stages := make([]StageStats, 0, len(stageOrder))
	for _, name := range stageOrder {
		stages = append(stages, summarize(name, byStage[name]))
	}

	return &Snapshot{
		UptimeSeconds: time.Since(o.start).Seconds(),
		Stages:        stages,
		Counters: []Counter{
			{CounterEventsSubmitted, o.eventsSubmitted.Load()},
			{CounterBatchesSubmitted, o.batchesSubmitted.Load()},
			{CounterDayCloses, o.dayCloses.Load()},
			{CounterSnapshots, o.snapshots.Load()},
			{CounterLastSnapshotDay, o.lastSnapshotDay.Load()},
			{CounterRetrains, o.retrains.Load()},
			{CounterRetrainFailures, o.retrainFailures.Load()},
			{CounterMergePendingDays, o.pendingMergeDays.Load()},
		},
		Shards: rows,
	}
}

// Stage returns the named stage's row, or a zero row if absent.
func (s *Snapshot) Stage(name string) StageStats {
	if s == nil {
		return StageStats{}
	}
	for _, st := range s.Stages {
		if st.Stage == name {
			return st
		}
	}
	return StageStats{}
}

// Counter returns the named counter's value (0 if absent).
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
