package attack

import (
	"strings"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/enterprise"
	"acobe/internal/logstore"
	"acobe/internal/mathx"
)

var victim = enterprise.Employee{ID: "emp001", Host: "WS-001.corp.example"}

func TestZeusQuietBeforeDay0(t *testing.T) {
	z := NewZeus(victim.ID, 100)
	if recs := z.Inject(victim, 99, mathx.NewRNG(1)); len(recs) != 0 {
		t.Errorf("%d records before the trigger day", len(recs))
	}
}

func TestZeusInfectionDayFootprint(t *testing.T) {
	z := NewZeus(victim.ID, 100)
	recs := z.Inject(victim, 100, mathx.NewRNG(1))
	var regMods, procCreates, fileDeletes, downloads int
	for _, r := range recs {
		switch {
		case r.Action == "RegistrySet":
			regMods++
		case r.Action == "ProcessCreate":
			procCreates++
		case r.Action == "FileDelete":
			fileDeletes++
		case r.Channel == logstore.ChannelProxy:
			downloads++
		}
		if r.User != victim.ID {
			t.Errorf("record for wrong user %s", r.User)
		}
	}
	if regMods < 3 {
		t.Errorf("%d registry modifications on day 0", regMods)
	}
	if procCreates < 2 {
		t.Errorf("%d process creations on day 0 (downloader + bot)", procCreates)
	}
	if fileDeletes != 1 {
		t.Errorf("%d file deletes (the downloader)", fileDeletes)
	}
	if downloads == 0 {
		t.Error("no download traffic on infection day")
	}
	// Critically: no DGA noise on the infection day itself (the paper's
	// Zeus communicates with the C&C "after a few days").
	for _, r := range recs {
		if r.Channel == logstore.ChannelDNS {
			t.Error("DNS queries on infection day")
		}
	}
}

func TestZeusDGABursts(t *testing.T) {
	z := NewZeus(victim.ID, 100)
	recs := z.Inject(victim, 105, mathx.NewRNG(2))
	dns, beacons := 0, 0
	domains := map[string]bool{}
	for _, r := range recs {
		switch {
		case r.Channel == logstore.ChannelDNS:
			dns++
			if r.Status != "failure" {
				t.Error("DGA query did not fail")
			}
			domains[r.Object] = true
		case r.Object == "cc.bulletproof.example":
			beacons++
		}
	}
	if dns < z.QueriesPerDay/2 {
		t.Errorf("%d DGA queries, want ≥ %d", dns, z.QueriesPerDay/2)
	}
	if len(domains) != dns {
		t.Errorf("DGA domains repeat within a day: %d unique of %d", len(domains), dns)
	}
	if beacons == 0 {
		t.Error("no C&C beacons")
	}

	// Next day's DGA domains must differ (the "new domain" signal).
	recs2 := z.Inject(victim, 106, mathx.NewRNG(3))
	for _, r := range recs2 {
		if r.Channel == logstore.ChannelDNS && domains[r.Object] {
			t.Errorf("domain %s reused across days", r.Object)
		}
	}
}

func TestRansomwareDetonation(t *testing.T) {
	rw := NewRansomware(victim.ID, 200)
	if recs := rw.Inject(victim, 199, mathx.NewRNG(1)); len(recs) != 0 {
		t.Error("activity before detonation")
	}
	recs := rw.Inject(victim, 200, mathx.NewRNG(1))
	writes, regs := 0, 0
	for _, r := range recs {
		switch r.Action {
		case "FileWrite":
			writes++
			if !strings.HasSuffix(r.Object, ".WNCRY") {
				t.Errorf("encrypted file %q missing marker extension", r.Object)
			}
		case "RegistrySet":
			regs++
		}
	}
	if writes != rw.FilesEncrypted {
		t.Errorf("%d file writes, want %d", writes, rw.FilesEncrypted)
	}
	if regs < 3 {
		t.Errorf("%d registry mods", regs)
	}
}

func TestRansomwareSpreadWindow(t *testing.T) {
	rw := NewRansomware(victim.ID, 200)
	if recs := rw.Inject(victim, 202, mathx.NewRNG(1)); len(recs) == 0 {
		t.Error("no share-encryption activity during spread days")
	}
	if recs := rw.Inject(victim, 200+cert.Day(rw.SpreadDays)+1, mathx.NewRNG(1)); len(recs) != 0 {
		t.Error("activity after the spread window")
	}
}

func TestAttacksImplementInterface(t *testing.T) {
	var _ enterprise.Attack = NewZeus("v", 0)
	var _ enterprise.Attack = NewRansomware("v", 0)
	z := NewZeus("v", 5)
	if z.Name() != "zeus" || z.Victim() != "v" || z.Day0() != 5 {
		t.Error("zeus metadata wrong")
	}
	r := NewRansomware("v", 6)
	if r.Name() != "ransomware" || r.Day0() != 6 {
		t.Error("ransomware metadata wrong")
	}
}
