// Package attack implements the two controlled attacks of the paper's
// case study (Section VI-A): a Zeus botnet infection (downloader, registry
// modification, C&C beacons, and newGOZ domain-generation NXDOMAIN bursts)
// and a WannaCry-style ransomware detonation (registry modification and
// mass file encryption). Both produce only their audit-log footprint —
// which is all the detector ever sees of real malware.
package attack

import (
	"fmt"
	"time"

	"acobe/internal/cert"
	"acobe/internal/dga"
	"acobe/internal/enterprise"
	"acobe/internal/logstore"
	"acobe/internal/mathx"
)

// at returns a timestamp on day d at the given hour.
func at(d cert.Day, hour int, rng *mathx.RNG) time.Time {
	return d.Date().Add(time.Duration(hour)*time.Hour +
		time.Duration(rng.Intn(3600))*time.Second)
}

// Zeus is the botnet attack: triggered on Day0, it downloads the bot,
// deletes the downloader, modifies registry values, and from then on
// beacons to its C&C while querying non-existing newGOZ domains.
type Zeus struct {
	VictimID string
	Start    cert.Day
	// QueriesPerDay is the newGOZ DGA burst size (the real bot walks up
	// to 1000 candidates; a capped burst keeps volumes plausible for a
	// proxy/DNS log).
	QueriesPerDay int
	DGA           *dga.Generator
}

// NewZeus returns the attack with the paper's Feb-2 trigger day.
func NewZeus(victim string, day0 cert.Day) *Zeus {
	return &Zeus{VictimID: victim, Start: day0, QueriesPerDay: 120, DGA: dga.New(0x60df)}
}

// Name implements enterprise.Attack.
func (z *Zeus) Name() string { return "zeus" }

// Victim implements enterprise.Attack.
func (z *Zeus) Victim() string { return z.VictimID }

// Day0 implements enterprise.Attack.
func (z *Zeus) Day0() cert.Day { return z.Start }

// Inject implements enterprise.Attack.
func (z *Zeus) Inject(victim enterprise.Employee, d cert.Day, rng *mathx.RNG) []logstore.Record {
	if d < z.Start {
		return nil
	}
	var recs []logstore.Record
	rec := func(hour int, channel string, eventID int, action, object, status string) {
		recs = append(recs, logstore.Record{
			Time: at(d, hour, rng), User: victim.ID, Host: victim.Host,
			Channel: channel, EventID: eventID, Action: action, Object: object, Status: status,
		})
	}

	if d == z.Start {
		// Infection: download Zeus from the downloader app, run it,
		// delete the downloader, and modify registry values.
		rec(10, logstore.ChannelProxy, 0, "HTTPRequest", "cdn.freewarehub.example", "success")
		rec(10, logstore.ChannelSysmon, 11, "FileCreate", `C:\Users\victim\AppData\downloader.exe`, "success")
		rec(10, logstore.ChannelSysmon, 1, "ProcessCreate", `C:\Users\victim\AppData\downloader.exe`, "success")
		rec(10, logstore.ChannelSysmon, 11, "FileCreate", `C:\Users\victim\AppData\zeus.exe`, "success")
		rec(10, logstore.ChannelSysmon, 1, "ProcessCreate", `C:\Users\victim\AppData\zeus.exe`, "success")
		rec(11, logstore.ChannelSysmon, 11, "FileDelete", `C:\Users\victim\AppData\downloader.exe`, "success")
		for i := 0; i < 4; i++ {
			rec(11, logstore.ChannelSysmon, 13, "RegistrySet",
				fmt.Sprintf(`HKCU\Software\Microsoft\Windows\CurrentVersion\Run\zbot%d`, i), "success")
		}
		return recs
	}

	// Post-infection: the bot restarts with the machine, beacons to the
	// C&C, and walks the day's newGOZ candidate list, producing failure
	// queries to never-before-seen domains.
	rec(7, logstore.ChannelSysmon, 1, "ProcessCreate", `C:\Users\victim\AppData\zeus.exe`, "success")
	for i := 0; i < 3+rng.Intn(3); i++ {
		rec(8+rng.Intn(12), logstore.ChannelProxy, 0, "HTTPRequest", "cc.bulletproof.example", "success")
	}
	n := z.QueriesPerDay/2 + rng.Intn(z.QueriesPerDay/2+1)
	domains := z.DGA.DomainsForDate(d.Date(), n)
	for _, dom := range domains {
		rec(rng.Intn(24), logstore.ChannelDNS, 0, "DNSQuery", dom, "failure")
	}
	return recs
}

// Ransomware is the WannaCry-style attack: on Day0 it modifies registry
// values and encrypts files en masse (reads, writes, deletes of many new
// file objects), spilling onto file shares the next days.
type Ransomware struct {
	VictimID string
	Start    cert.Day
	// FilesEncrypted is the size of the detonation-day encryption sweep.
	FilesEncrypted int
	// SpreadDays is how many days share-encryption activity continues.
	SpreadDays int
}

// NewRansomware returns the attack with the paper's Feb-2 trigger day.
func NewRansomware(victim string, day0 cert.Day) *Ransomware {
	return &Ransomware{VictimID: victim, Start: day0, FilesEncrypted: 400, SpreadDays: 3}
}

// Name implements enterprise.Attack.
func (r *Ransomware) Name() string { return "ransomware" }

// Victim implements enterprise.Attack.
func (r *Ransomware) Victim() string { return r.VictimID }

// Day0 implements enterprise.Attack.
func (r *Ransomware) Day0() cert.Day { return r.Start }

// Inject implements enterprise.Attack.
func (r *Ransomware) Inject(victim enterprise.Employee, d cert.Day, rng *mathx.RNG) []logstore.Record {
	if d < r.Start || d > r.Start+cert.Day(r.SpreadDays) {
		return nil
	}
	var recs []logstore.Record
	rec := func(hour int, channel string, eventID int, action, object, status string) {
		recs = append(recs, logstore.Record{
			Time: at(d, hour, rng), User: victim.ID, Host: victim.Host,
			Channel: channel, EventID: eventID, Action: action, Object: object, Status: status,
		})
	}

	if d == r.Start {
		rec(13, logstore.ChannelSysmon, 11, "FileCreate", `C:\Users\victim\AppData\wcry.exe`, "success")
		rec(13, logstore.ChannelSysmon, 1, "ProcessCreate", `C:\Users\victim\AppData\wcry.exe`, "success")
		for i := 0; i < 5; i++ {
			rec(13, logstore.ChannelSysmon, 13, "RegistrySet",
				fmt.Sprintf(`HKLM\Software\WanaCrypt0r\wd%d`, i), "success")
		}
		rec(13, logstore.ChannelSecurity, 4698, "ScheduledTask", "tasksche.exe", "success")
		// Detonation-day local sweep.
		for i := 0; i < r.FilesEncrypted; i++ {
			hour := 13 + rng.Intn(6)
			obj := fmt.Sprintf(`C:\Users\victim\Documents\file%04d.docx.WNCRY`, i)
			rec(hour, logstore.ChannelSysmon, 11, "FileWrite", obj, "success")
		}
		return recs
	}

	// Following days: encryption of reachable shares continues.
	rec(9, logstore.ChannelSysmon, 1, "ProcessCreate", `C:\Users\victim\AppData\wcry.exe`, "success")
	n := r.FilesEncrypted / 4
	for i := 0; i < n; i++ {
		obj := fmt.Sprintf(`\\fs01\public\share%04d.xlsx.WNCRY`, int(d-r.Start)*1000+i)
		rec(8+rng.Intn(10), logstore.ChannelSysmon, 11, "FileWrite", obj, "success")
		if i%10 == 0 {
			rec(8+rng.Intn(10), logstore.ChannelSecurity, 5145, "ShareAccess", `\\fs01\public`, "success")
		}
	}
	return recs
}
