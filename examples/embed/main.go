// Embed: using the public pkg/acobe facade directly.
//
// The other examples drive the internal experiment harness; this one shows
// what an external program does — import only "acobe/pkg/acobe", fill a
// measurement table from its own telemetry, and run the detector lifecycle
// by hand: NewDetector → Fit → Rank, plus SaveModels/LoadModels for
// shipping trained weights between processes.
//
// The "telemetry" here is synthetic: a small fleet of service accounts
// with seasonal request/error/transfer counts, one of which starts
// exfiltrating during the scoring window.
//
// Run with:
//
//	go run ./examples/embed
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"acobe/pkg/acobe"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Fleet layout: accounts 0..5 belong to the "batch" pool, 6..11 to the
// "api" pool; account 9 goes rogue on rogueFrom.
const (
	nAccounts = 12
	days      = 120
	trainTo   = acobe.Day(89)
	rogueFrom = acobe.Day(100)
	rogueID   = 9
)

func run(out io.Writer) error {
	ctx := context.Background()

	accounts := make([]string, nAccounts)
	membership := make([]int, nAccounts)
	for i := range accounts {
		accounts[i] = fmt.Sprintf("svc-%02d", i)
		membership[i] = i / 6
	}
	features := []string{"requests", "errors", "bytes-out"}

	tbl, err := acobe.NewTable(accounts, features, acobe.NumTimeframes, 0, days-1)
	if err != nil {
		return err
	}
	fillTelemetry(tbl, accounts, features)

	opts := func() []acobe.Option {
		return []acobe.Option{
			acobe.WithAspects(acobe.Aspect{Name: "traffic", Features: features}),
			acobe.WithGroups([]string{"batch", "api"}, membership),
			acobe.WithWindow(14),
			acobe.WithMatrixDays(7),
			// Raw counts on a handful of features: plain max aggregation
			// without TF weights separates a single bursting account best.
			acobe.WithWeighting(false),
			acobe.WithAggregate(acobe.AggregateMax),
			acobe.WithSeed(3),
			acobe.WithVotes(1),
			acobe.WithModelConfig(func(dim int) acobe.ModelConfig {
				cfg := acobe.FastModelConfig(dim)
				cfg.Hidden = []int{16, 8}
				cfg.Epochs = 40
				return cfg
			}),
		}
	}
	det, err := acobe.NewDetector(tbl, opts()...)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "fitting on days %v..%v...\n", det.FirstScoreableDay(), trainTo)
	losses, err := det.Fit(ctx, det.FirstScoreableDay(), trainTo)
	if err != nil {
		return err
	}
	for aspect, loss := range losses {
		fmt.Fprintf(out, "  aspect %q converged at loss %.5f\n", aspect, loss)
	}

	// Round-trip the trained weights the way a scoring process would
	// receive them from a training process.
	var weights bytes.Buffer
	if err := det.SaveModels(&weights); err != nil {
		return err
	}
	scorer, err := acobe.NewDetector(tbl, opts()...)
	if err != nil {
		return err
	}
	if err := scorer.LoadModels(&weights); err != nil {
		return err
	}

	list, err := scorer.Rank(ctx, rogueFrom, days-1)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\ninvestigation list for days %v..%v:\n", rogueFrom, acobe.Day(days-1))
	for i, r := range list {
		marker := ""
		if r.User == accounts[rogueID] {
			marker = "  ← the rogue account"
		}
		fmt.Fprintf(out, "%3d. %-8s priority=%d%s\n", i+1, r.User, r.Priority, marker)
	}
	if list[0].User != accounts[rogueID] {
		return fmt.Errorf("expected %s on top of the list", accounts[rogueID])
	}
	return nil
}

// fillTelemetry writes deterministic seasonal counts: every account has its
// own baseline and weekly rhythm, and the rogue account's bytes-out and
// error counts jump during the incident window.
func fillTelemetry(tbl *acobe.Table, accounts, features []string) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%1000) / 1000
	}
	for d := acobe.Day(0); d < days; d++ {
		for a := range accounts {
			for f := range features {
				for frame := 0; frame < acobe.NumTimeframes; frame++ {
					base := float64(10+3*a+2*f) * (1 + 0.25*float64(int(d)%7)/6)
					v := base + 4*next()
					if a == rogueID && d >= rogueFrom && f > 0 {
						v += 80 // errors and bytes-out explode
					}
					tbl.Add(a, f, frame, d, v)
				}
			}
		}
	}
}
