package main

import (
	"io"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an autoencoder ensemble")
	}
	if err := run(io.Discard); err != nil {
		t.Fatalf("embed example failed: %v", err)
	}
}
