// Quickstart: the smallest end-to-end ACOBE run.
//
// It synthesizes a little organization with one insider, trains the
// per-aspect autoencoder ensemble on the pre-incident months, and prints
// the ordered investigation list for the incident window — the insider
// should be at (or very near) the top.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"acobe/internal/experiment"
	"acobe/internal/metrics"
)

func main() {
	log.SetFlags(0)
	// A tiny preset keeps this example under a couple of minutes on a
	// laptop; see examples/insiderthreat for the full-size walk-through.
	if err := run(os.Stdout, experiment.TinyPreset()); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, preset experiment.Preset) error {
	fmt.Fprintln(out, "synthesizing CERT-style audit logs (4 departments, 1 insider per dept)...")
	start := time.Now()
	data, err := experiment.BuildCERTData(preset)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  %d users, %d features, days %v..%v (%v)\n",
		len(data.UserIDs), len(data.Table.Features()), data.SpanStart, data.SpanEnd,
		time.Since(start).Round(time.Millisecond))

	// Pick the paper's running example: scenario 2 in the r6.1 half — a
	// user who job-hunts for two months and then exfiltrates data with a
	// thumb drive.
	sc := data.ScenarioByName("r6.1-s2")
	fmt.Fprintf(out, "scenario %s: insider %s\n", sc.Name(), sc.UserID())

	fmt.Fprintln(out, "training ACOBE (device / file / http autoencoders) and scoring...")
	start = time.Now()
	run, err := experiment.RunScenario(data, experiment.ModelACOBE, sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  trained on %v..%v, scored %v..%v (%v)\n",
		run.TrainFrom, run.TrainTo, run.TestFrom, run.TestTo, time.Since(start).Round(time.Second))

	fmt.Fprintln(out, "\ninvestigation list (top 10):")
	for i, r := range run.List {
		if i >= 10 {
			break
		}
		marker := ""
		if r.User == run.Insider {
			marker = "  ← the insider"
		}
		fmt.Fprintf(out, "%3d. %-10s priority=%-3d per-aspect ranks=%v%s\n", i+1, r.User, r.Priority, r.Ranks, marker)
	}

	curves, err := metrics.Evaluate(run.Items)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nROC AUC %.4f; false positives listed before the insider: %v\n",
		curves.AUC, curves.FPsBeforeTP())
	return nil
}
