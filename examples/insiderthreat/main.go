// Insider-threat walk-through: reproduces the paper's r6.1 Scenario 2
// analysis step by step, exposing the intermediate artifacts the
// quickstart hides — the raw measurements, the compound behavioral
// deviation matrix (Figure 4), the per-aspect anomaly scores (Figure 5),
// and a comparison of ACOBE against the single-day Baseline on the same
// data.
//
// Run with:
//
//	go run ./examples/insiderthreat
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"acobe/internal/experiment"
	"acobe/internal/features"
	"acobe/internal/metrics"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout, experiment.TinyPreset()); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, preset experiment.Preset) error {
	data, err := experiment.BuildCERTData(preset)
	if err != nil {
		return err
	}
	sc := data.ScenarioByName("r6.1-s2")
	insider := sc.UserID()
	ws, we := sc.Window()
	fmt.Fprintf(out, "insider %s, labeled window %v..%v\n\n", insider, ws, we)

	// --- Step 1: raw measurements -----------------------------------
	// The extractor has already turned the event stream into per-day
	// counts m_{f,t,d}. Look at the marquee feature: resume uploads.
	u := data.Table.UserIndex(insider)
	f := data.Table.FeatureIndex(features.FeatHTTPUploadDoc)
	fmt.Fprintln(out, "http:upload-doc daily counts around the window start (work hours):")
	for d := ws - 5; d < ws+10; d++ {
		fmt.Fprintf(out, "  %v  %2.0f\n", d, data.Table.At(u, f, 0, d))
	}

	// --- Step 2: behavioral deviations (Figure 4) -------------------
	ind, _, err := data.Fields(preset.Deviation)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nsame feature as clamped z-score deviations σ (history window ω=%d):\n", preset.Deviation.Window)
	for d := ws - 5; d < ws+10; d++ {
		sigma := ind.Sigma(u, f, 0, d)
		bar := ""
		for i := 0.0; i < sigma; i += 0.5 {
			bar += "█"
		}
		fmt.Fprintf(out, "  %v  %+5.2f %s\n", d, sigma, bar)
	}
	heatmaps, err := experiment.BuildFig4(data)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "\nFigure 4 heatmap (HTTP aspect, working hours):")
	fmt.Fprintln(out, heatmaps[2].ASCII())

	// --- Step 3: ACOBE vs the single-day Baseline -------------------
	fmt.Fprintln(out, "training ACOBE and the Liu-et-al Baseline on the same split...")
	results := map[string]*experiment.ScenarioRun{}
	for _, kind := range []experiment.ModelKind{experiment.ModelACOBE, experiment.ModelBaseline} {
		run, err := experiment.RunScenario(data, kind, sc)
		if err != nil {
			return err
		}
		results[kind.String()] = run
	}

	for name, run := range results {
		curves, err := metrics.Evaluate(run.Items)
		if err != nil {
			return err
		}
		pos := 0
		for i, it := range metrics.OrderWorstCase(run.Items) {
			if it.Positive {
				pos = i + 1
				break
			}
		}
		fmt.Fprintf(out, "  %-8s insider at list position %d/%d, AUC %.4f\n",
			name, pos, len(run.Items), curves.AUC)
	}

	// --- Step 4: the score waveform (Figure 5(b)) -------------------
	w, err := experiment.BuildFig5Waveform(data, results["ACOBE"], "http")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nFigure 5(b): http-aspect anomaly scores (dept of %s); mean=%.4f std=%.4f\n",
		insider, w.Mean, w.Std)
	fmt.Fprintln(out, w.Chart.ASCII(10, 70))
	return nil
}
