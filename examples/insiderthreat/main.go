// Insider-threat walk-through: reproduces the paper's r6.1 Scenario 2
// analysis step by step, exposing the intermediate artifacts the
// quickstart hides — the raw measurements, the compound behavioral
// deviation matrix (Figure 4), the per-aspect anomaly scores (Figure 5),
// and a comparison of ACOBE against the single-day Baseline on the same
// data.
//
// Run with:
//
//	go run ./examples/insiderthreat
package main

import (
	"fmt"
	"log"

	"acobe/internal/experiment"
	"acobe/internal/features"
	"acobe/internal/metrics"
)

func main() {
	log.SetFlags(0)
	preset := experiment.TinyPreset()

	data, err := experiment.BuildCERTData(preset)
	if err != nil {
		log.Fatal(err)
	}
	sc := data.ScenarioByName("r6.1-s2")
	insider := sc.UserID()
	ws, we := sc.Window()
	fmt.Printf("insider %s, labeled window %v..%v\n\n", insider, ws, we)

	// --- Step 1: raw measurements -----------------------------------
	// The extractor has already turned the event stream into per-day
	// counts m_{f,t,d}. Look at the marquee feature: resume uploads.
	u := data.Table.UserIndex(insider)
	f := data.Table.FeatureIndex(features.FeatHTTPUploadDoc)
	fmt.Println("http:upload-doc daily counts around the window start (work hours):")
	for d := ws - 5; d < ws+10; d++ {
		fmt.Printf("  %v  %2.0f\n", d, data.Table.At(u, f, 0, d))
	}

	// --- Step 2: behavioral deviations (Figure 4) -------------------
	ind, _, err := data.Fields(preset.Deviation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame feature as clamped z-score deviations σ (history window ω=30):")
	for d := ws - 5; d < ws+10; d++ {
		sigma := ind.Sigma(u, f, 0, d)
		bar := ""
		for i := 0.0; i < sigma; i += 0.5 {
			bar += "█"
		}
		fmt.Printf("  %v  %+5.2f %s\n", d, sigma, bar)
	}
	heatmaps, err := experiment.BuildFig4(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 4 heatmap (HTTP aspect, working hours):")
	fmt.Println(heatmaps[2].ASCII())

	// --- Step 3: ACOBE vs the single-day Baseline -------------------
	fmt.Println("training ACOBE and the Liu-et-al Baseline on the same split...")
	results := map[string]*experiment.ScenarioRun{}
	for _, kind := range []experiment.ModelKind{experiment.ModelACOBE, experiment.ModelBaseline} {
		run, err := experiment.RunScenario(data, kind, sc)
		if err != nil {
			log.Fatal(err)
		}
		results[kind.String()] = run
	}

	for name, run := range results {
		curves, err := metrics.Evaluate(run.Items)
		if err != nil {
			log.Fatal(err)
		}
		pos := 0
		for i, it := range metrics.OrderWorstCase(run.Items) {
			if it.Positive {
				pos = i + 1
				break
			}
		}
		fmt.Printf("  %-8s insider at list position %d/%d, AUC %.4f\n",
			name, pos, len(run.Items), curves.AUC)
	}

	// --- Step 4: the score waveform (Figure 5(b)) -------------------
	w, err := experiment.BuildFig5Waveform(data, results["ACOBE"], "http")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 5(b): http-aspect anomaly scores (dept of %s); mean=%.4f std=%.4f\n",
		insider, w.Mean, w.Std)
	fmt.Println(w.Chart.ASCII(10, 70))

}
