package main

import (
	"io"
	"testing"

	"acobe/internal/autoencoder"
	"acobe/internal/deviation"
	"acobe/internal/experiment"
)

// smokePreset shrinks the autoencoders so the walk-through (which trains
// both ACOBE and the Baseline) completes in seconds.
func smokePreset() experiment.Preset {
	return experiment.Preset{
		Name:         "smoke",
		UsersPerDept: 8,
		Deviation:    deviation.Config{Window: 30, MatrixDays: 14, Delta: 3, Epsilon: 1, Weighted: true},
		AEConfig: func(dim int) autoencoder.Config {
			cfg := autoencoder.FastConfig(dim)
			cfg.Hidden = []int{16, 8}
			cfg.Epochs = 4
			cfg.EarlyStopDelta = 0.01
			cfg.Patience = 1
			return cfg
		},
		TrainStride: 8,
		N:           3,
		Seed:        1,
	}
}

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two model ensembles")
	}
	if err := run(io.Discard, smokePreset()); err != nil {
		t.Fatalf("insiderthreat example failed: %v", err)
	}
}
