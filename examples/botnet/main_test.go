package main

import (
	"io"
	"testing"

	"acobe/internal/autoencoder"
	"acobe/internal/deviation"
	"acobe/internal/experiment"
)

// smokePreset shrinks the enterprise and its autoencoders so the case study
// completes in seconds.
func smokePreset() experiment.EnterprisePreset {
	return experiment.EnterprisePreset{
		Name:      "smoke",
		Employees: 12,
		Deviation: deviation.Config{Window: 14, MatrixDays: 14, Delta: 3, Epsilon: 1, Weighted: true},
		AEConfig: func(dim int) autoencoder.Config {
			cfg := autoencoder.FastConfig(dim)
			cfg.Hidden = []int{16, 8}
			cfg.Epochs = 4
			cfg.EarlyStopDelta = 0.01
			cfg.Patience = 1
			return cfg
		},
		TrainStride: 8,
		N:           3,
		Seed:        1,
	}
}

func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the enterprise and trains the ensemble")
	}
	if err := run(io.Discard, smokePreset()); err != nil {
		t.Fatalf("botnet example failed: %v", err)
	}
}
