// Botnet case study: reproduces the paper's Zeus scenario (Figure 7(b)).
//
// An enterprise of employees is simulated for seven months; on "Feb 2nd"
// one victim is infected with a Zeus-style bot that modifies registry
// values, beacons to its C&C, and queries newGOZ DGA domains that fail to
// resolve. ACOBE, trained on the first six months across six behavioral
// aspects, should put the victim at the top of the daily investigation
// list right after the attack.
//
// Run with:
//
//	go run ./examples/botnet
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"acobe/internal/cert"
	"acobe/internal/dga"
	"acobe/internal/experiment"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout, experiment.EnterpriseTinyPreset()); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, preset experiment.EnterprisePreset) error {
	// Show the attacker's side first: the bot's rendezvous domains for
	// the attack day. Defenders see these as NXDOMAIN bursts.
	g := dga.New(0x60df)
	day0 := cert.MustDay("2011-02-02") // the paper's "Feb 2nd"
	fmt.Fprintln(out, "first newGOZ candidate domains on the attack day:")
	for _, d := range g.DomainsForDate(day0.Date(), 5) {
		fmt.Fprintln(out, "  ", d)
	}

	fmt.Fprintf(out, "\nsimulating %d employees over seven months and injecting Zeus on %v...\n",
		preset.Employees, day0)
	start := time.Now()
	run, err := experiment.RunEnterprise(preset, experiment.AttackZeus)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pipeline + training done in %v; victim is %s\n",
		time.Since(start).Round(time.Second), run.Victim)

	charts, rank, err := experiment.BuildFig7(run)
	if err != nil {
		return err
	}
	// The paper highlights the Command and HTTP aspects for the botnet.
	for _, c := range charts {
		if c.Title == fmt.Sprintf("Fig7 Command aspect (%s attack)", run.Attack) ||
			c.Title == fmt.Sprintf("Fig7 HTTP aspect (%s attack)", run.Attack) {
			fmt.Fprintln(out, c.ASCII(10, 70))
		}
	}
	fmt.Fprintln(out, rank.ASCII(8, 70))

	attackIdx := int(run.AttackDay - run.ScoreFrom)
	fmt.Fprintf(out, "victim's daily investigation rank from the attack day on: %v\n",
		run.VictimDailyRank[attackIdx:])
	return nil
}
