// Ransomware case study: reproduces the paper's WannaCry scenario
// (Figure 7(a)).
//
// The victim's machine detonates a WannaCry-style sample on "Feb 2nd":
// registry modifications, a scheduled task, and a mass file-encryption
// sweep that spills onto file shares over the following days. The File
// and Config aspects light up; ACOBE ranks the victim first while the
// attack footprint remains inside the compound deviation matrix.
//
// Run with:
//
//	go run ./examples/ransomware
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"acobe/internal/experiment"
)

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout, experiment.EnterpriseTinyPreset()); err != nil {
		log.Fatal(err)
	}
}

func run(out io.Writer, preset experiment.EnterprisePreset) error {
	fmt.Fprintf(out, "simulating %d employees and detonating ransomware...\n", preset.Employees)
	start := time.Now()
	run, err := experiment.RunEnterprise(preset, experiment.AttackRansomware)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "pipeline + training done in %v; victim is %s, attack day %v\n",
		time.Since(start).Round(time.Second), run.Victim, run.AttackDay)

	charts, rank, err := experiment.BuildFig7(run)
	if err != nil {
		return err
	}
	// The paper highlights File and Config for the ransomware.
	for _, c := range charts {
		if c.Title == fmt.Sprintf("Fig7 File aspect (%s attack)", run.Attack) ||
			c.Title == fmt.Sprintf("Fig7 Config aspect (%s attack)", run.Attack) {
			fmt.Fprintln(out, c.ASCII(10, 70))
		}
	}
	fmt.Fprintln(out, rank.ASCII(8, 70))

	attackIdx := int(run.AttackDay - run.ScoreFrom)
	held := 0
	for _, r := range run.VictimDailyRank[attackIdx:] {
		if r != 1 {
			break
		}
		held++
	}
	fmt.Fprintf(out, "victim held investigation rank 1 for %d consecutive days after the attack\n", held)
	fmt.Fprintf(out, "daily ranks from attack day: %v\n", run.VictimDailyRank[attackIdx:])
	return nil
}
