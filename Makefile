# Test tiers (see DESIGN.md §8 "Testing architecture"):
#   test-short  — seconds; skips everything that trains an ensemble
#   test        — tier-1 gate: full build + all tests, incl. golden pipelines
#   test-race   — full suite under the race detector (slow; CI tier)
#   fuzz-smoke  — each native fuzz target for $(FUZZTIME) on top of its corpus
#   vet         — static checks
#   golden-update — regenerate testdata/golden snapshots after an intended
#                   behavior change; run twice and `git diff` to prove the
#                   pipelines are still deterministic

GO ?= go
FUZZTIME ?= 10s

FUZZ_TARGETS = \
	./internal/cert:FuzzReadEventsCSV \
	./internal/cert:FuzzParseDay \
	./internal/dga:FuzzDomains \
	./internal/logstore:FuzzReadJSONL \
	./internal/deviation:FuzzSigma

.PHONY: build test test-short test-race fuzz-smoke vet golden-update

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-short:
	$(GO) vet ./...
	$(GO) test -short ./...

test-race:
	$(GO) test -race -timeout 40m ./...

fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "--- $$pkg $$fn"; \
		$(GO) test $$pkg -run "^$$fn$$" -fuzz "^$$fn$$" -fuzztime $(FUZZTIME); \
	done

vet:
	$(GO) vet ./...

golden-update:
	$(GO) test ./internal/testkit ./internal/experiment ./cmd/repro -run 'Golden' -update -count=1
