# Test tiers (see DESIGN.md §8 "Testing architecture"):
#   test-short  — seconds; skips everything that trains an ensemble
#   test        — tier-1 gate: build + vet + all tests + serve-smoke
#   test-race   — full suite under the race detector (slow; CI tier)
#   fuzz-smoke  — each native fuzz target for $(FUZZTIME) on top of its corpus
#   serve-smoke — boot the acobed daemon selftest (real HTTP listener:
#                 ingest → close days → retrain → rank) and diff its ranked
#                 CSV against the committed golden copy
#   audit-smoke — tiny audited ingest via acobed (-audit-smoke), offline
#                 -verify must pass, then flip one sealed byte and -verify
#                 must exit non-zero (the CLI face of the tamper matrix in
#                 internal/serve/audit_tamper_test.go)
#   bench       — scoring + kernel benchmarks with alloc stats (one run
#                 each; BENCH_nn.json / BENCH_score.json hold the numbers
#                 `cmd/repro -bench-nn` / `-bench-score` commit)
#   bench-serve — rewrite BENCH_serve.json: daemon ingest benchmarks with
#                 the observer on/off overhead comparison (cmd/repro
#                 -bench-serve) plus a 100k-user acobeload run (closed-loop
#                 concurrency sweep, ranks/s during retrain, and the
#                 rank-during-close probe; prints old-vs-new close_merge
#                 from the previous BENCH_serve.json run)
#   vet         — static checks
#   golden-update — regenerate testdata/golden snapshots after an intended
#                   behavior change; run twice and `git diff` to prove the
#                   pipelines are still deterministic

GO ?= go
FUZZTIME ?= 10s

FUZZ_TARGETS = \
	./internal/cert:FuzzReadEventsCSV \
	./internal/cert:FuzzParseDay \
	./internal/dga:FuzzDomains \
	./internal/logstore:FuzzReadJSONL \
	./internal/deviation:FuzzSigma \
	./internal/serve:FuzzWALDecode \
	./internal/serve:FuzzShardRouter \
	./internal/serve:FuzzManifestDecode \
	./internal/audit:FuzzProofDecode \
	./internal/audit:FuzzAuditTrailerDecode

.PHONY: build test test-short test-race bench bench-serve fuzz-smoke serve-smoke audit-smoke vet golden-update

build:
	$(GO) build ./...

test: build vet
	$(GO) test ./...
	$(MAKE) serve-smoke
	$(MAKE) audit-smoke

test-short:
	$(GO) vet ./...
	$(GO) test -short ./...

test-race:
	$(GO) test -race -timeout 90m ./...

bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkNNMatMul|BenchmarkMatMulATB|BenchmarkMatMulABT|BenchmarkTrainStep|BenchmarkScoreBatch|BenchmarkServeRank|BenchmarkServeIngest)$$' -benchmem -count=1 -timeout 60m .
	$(GO) test ./internal/nn -run '^$$' -bench '^BenchmarkMatMulDirectDispatch$$' -benchmem -count=1
	$(GO) test ./internal/audit -run '^$$' -bench '^BenchmarkChainFold' -benchmem -count=1

bench-serve:
	$(GO) run ./cmd/repro -bench-serve after
	$(GO) run ./cmd/acobeload -self -users 100000 -shards 4 -days 2 -concurrency 2,4 -batch 5000 -out BENCH_serve.json

fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "--- $$pkg $$fn"; \
		$(GO) test $$pkg -run "^$$fn$$" -fuzz "^$$fn$$" -fuzztime $(FUZZTIME); \
	done

serve-smoke:
	@echo "--- acobed selftest (online serving smoke, unsharded)"
	@$(GO) run ./cmd/acobed -selftest | diff -u cmd/acobed/testdata/golden/selftest.csv - \
		&& echo "serve-smoke: ranked list matches golden"
	@echo "--- acobed selftest (online serving smoke, -shards 4)"
	@$(GO) run ./cmd/acobed -selftest -shards 4 | diff -u cmd/acobed/testdata/golden/selftest.csv - \
		&& echo "serve-smoke: sharded ranked list matches golden"
	@echo "--- acobeload smoke (small closed-loop sweep + retrain against an in-process daemon)"
	@$(GO) run ./cmd/acobeload -self -users 100 -shards 2 -days 2 -concurrency 1,2 -batch 500 >/dev/null \
		&& echo "serve-smoke: acobeload sweep + retrain phase ok"

audit-smoke:
	@set -e; dir=$$(mktemp -d); trap "rm -rf $$dir" EXIT; \
	echo "--- acobed audit smoke (provable ingest -> verify; tamper -> verify fails)"; \
	$(GO) run ./cmd/acobed -audit-smoke -data-dir $$dir >/dev/null; \
	$(GO) run ./cmd/acobed -verify -data-dir $$dir >/dev/null \
		&& echo "audit-smoke: untampered chain verifies"; \
	seg=$$(ls $$dir/wal/wal-*.log | head -1); \
	printf '\377' | dd of=$$seg bs=1 seek=0 count=1 conv=notrunc status=none; \
	if $(GO) run ./cmd/acobed -verify -data-dir $$dir >/dev/null 2>&1; then \
		echo "audit-smoke: FAIL: tampered chain verified"; exit 1; \
	else echo "audit-smoke: tamper detected, -verify exits non-zero"; fi

vet:
	$(GO) vet ./...

golden-update:
	$(GO) test ./internal/testkit ./internal/experiment ./cmd/repro ./cmd/acobed -run 'Golden' -update -count=1
